// Command benchjson converts `go test -bench` output into machine-readable
// JSON so the performance trajectory can be tracked across commits.
//
// It reads benchmark output on stdin (or -in), keeps every benchmark line,
// parses the /clients=N/shards=N/workers=N name components the scale
// benchmarks embed, aggregates repeated runs of the same benchmark (from
// `-count=N`) by median, and derives two wall-clock speedups: the highest
// shard count over shards=1 per client population, and the highest worker
// count over workers=1 per (benchmark, clients, shards) group:
//
//	go test -bench='ScaleEngine|ScaleWorkers' -benchmem -count=3 ./... | benchjson -o BENCH_scale.json
//
// With -baseline pointing at an earlier benchjson output, a vs_baseline
// section records the ns/op speedup and the allocs/op before and after
// for every benchmark the two files share. -gate turns the comparison
// into a regression gate: if any shared benchmark's speedup falls below
// the threshold, benchjson exits nonzero after writing its output:
//
//	benchjson -in bench_output.txt -baseline BENCH_scale_baseline.json -gate 0.85 -o BENCH_scale.json
//
// -history appends one JSON line per invocation to the named file, so the
// repo accumulates an append-only perf log across commits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result. When the input holds several runs of the
// same benchmark (go test -count=N), the entry is the per-metric median
// and Runs records the sample count.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	// Sites and Segs carry the hierarchical-topology axes: the site count
	// and the total segment count of a WAN-scale benchmark (tier depth is
	// sites=1 flat vs sites>1 hierarchical).
	Sites int `json:"sites,omitempty"`
	Segs  int `json:"segs,omitempty"`
	Runs  int `json:"runs,omitempty"`
	// NsSamples holds the sorted per-run ns/op values behind the median
	// when the input carried -count repetitions; the Mann–Whitney gate
	// needs the samples, not just their median.
	NsSamples []float64 `json:"ns_per_op_samples,omitempty"`
}

// Speedup compares two shard counts of the same benchmark and community.
type Speedup struct {
	Benchmark  string  `json:"benchmark"`
	Clients    int     `json:"clients"`
	Shards     int     `json:"shards"`
	OverShards int     `json:"over_shards"`
	WallClock  float64 `json:"wall_clock_speedup"`
}

// WorkerSpeedup compares two worker counts of the same benchmark,
// community and shard count — the executor's multi-core payoff, since
// rounds and exchanges are identical at every worker count.
type WorkerSpeedup struct {
	Benchmark   string  `json:"benchmark"`
	Clients     int     `json:"clients,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	Workers     int     `json:"workers"`
	OverWorkers int     `json:"over_workers"`
	WallClock   float64 `json:"wall_clock_speedup"`
}

// Delta compares one benchmark against the same-named benchmark in a
// baseline file. Speedup is baseline-over-current ns/op, so 2.0 means
// the code got twice as fast.
type Delta struct {
	Name            string  `json:"name"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"`
	BaselineAllocs  int64   `json:"baseline_allocs_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	// PValue is the two-sided Mann–Whitney U p-value comparing the two
	// runs' ns/op samples; zero when either side lacks samples (single-run
	// entries, or a baseline written before samples were recorded).
	PValue float64 `json:"p_value,omitempty"`
}

// Output is the file layout.
type Output struct {
	Benchmarks     []Entry         `json:"benchmarks"`
	Speedups       []Speedup       `json:"scale_speedups,omitempty"`
	WorkerSpeedups []WorkerSpeedup `json:"worker_speedups,omitempty"`
	Baseline       string          `json:"baseline,omitempty"`
	VsBaseline     []Delta         `json:"vs_baseline,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("o", "", "JSON output file (default stdout)")
	baseline := flag.String("baseline", "", "earlier benchjson output to compare against (adds a vs_baseline section)")
	gate := flag.Float64("gate", 0, "fail (exit 1) if any vs_baseline speedup falls below this threshold (requires -baseline)")
	allocGate := flag.Float64("allocgate", 0, "fail (exit 1) if any vs_baseline allocs/op ratio (baseline over current) falls below this threshold (requires -baseline)")
	alpha := flag.Float64("alpha", 0.1, "significance level for the Mann-Whitney gate: a below-gate benchmark only fails when its p-value is <= alpha (or no samples exist to test)")
	history := flag.String("history", "", "append one JSON line summarizing this run to the named file")
	histSummary := flag.String("history-summary", "", "render the named history file as a per-benchmark TSV trend table and exit")
	histPlot := flag.String("history-plot", "", "render the named history file as an SVG trend chart (to -o, default stdout) and exit")
	flag.Parse()

	if *histSummary != "" {
		if err := summarizeHistory(*histSummary, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *histPlot != "" {
		if err := plotHistory(*histPlot, *out); err != nil {
			fatal(err)
		}
		return
	}
	if (*gate != 0 || *allocGate != 0) && *baseline == "" {
		fatal(fmt.Errorf("-gate and -allocgate require -baseline"))
	}
	if *alpha <= 0 || *alpha >= 1 {
		fatal(fmt.Errorf("-alpha must be in (0, 1), got %g", *alpha))
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	o, err := Convert(r)
	if err != nil {
		fatal(err)
	}
	if *baseline != "" {
		if err := o.compareBaseline(*baseline); err != nil {
			fatal(err)
		}
	}
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(o.Benchmarks), *out)
	}
	if *history != "" {
		if err := o.appendHistory(*history, *out, time.Now().UTC()); err != nil {
			fatal(err)
		}
	}
	if *gate != 0 {
		if err := o.checkGate(*gate, *alpha); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %.2f passed for %d benchmarks\n", *gate, len(o.VsBaseline))
	}
	if *allocGate != 0 {
		if err := o.checkAllocGate(*allocGate); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: allocgate %.2f passed for %d benchmarks\n", *allocGate, len(o.VsBaseline))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Convert parses benchmark output, merges -count repetitions by median,
// and derives the scale and worker speedups.
func Convert(r io.Reader) (*Output, error) {
	var raw []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseLine(line)
		if ok {
			raw = append(raw, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	o := &Output{Benchmarks: aggregate(raw)}
	o.Speedups = deriveSpeedups(o.Benchmarks)
	o.WorkerSpeedups = deriveWorkerSpeedups(o.Benchmarks)
	return o, nil
}

// aggregate merges repeated runs of the same benchmark name into one
// entry per name, taking the median of each metric (benchstat-style, so
// a single outlier run cannot trip the regression gate). Order follows
// first appearance; iterations are summed across runs.
func aggregate(raw []Entry) []Entry {
	groups := map[string][]Entry{}
	var order []string
	for _, e := range raw {
		if _, seen := groups[e.Name]; !seen {
			order = append(order, e.Name)
		}
		groups[e.Name] = append(groups[e.Name], e)
	}
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		g := groups[name]
		e := g[0]
		if len(g) > 1 {
			e.Runs = len(g)
			e.Iterations = 0
			ns := make([]float64, len(g))
			bytes := make([]float64, len(g))
			allocs := make([]float64, len(g))
			for i, s := range g {
				e.Iterations += s.Iterations
				ns[i] = s.NsPerOp
				bytes[i] = float64(s.BytesPerOp)
				allocs[i] = float64(s.AllocsPerOp)
			}
			e.NsPerOp = median(ns)
			e.BytesPerOp = int64(median(bytes))
			e.AllocsPerOp = int64(median(allocs))
			e.NsSamples = ns // median() sorted them in place
		}
		out = append(out, e)
	}
	return out
}

// median of a non-empty sample set; the mean of the two middle values
// for even counts.
func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// compareBaseline reads an earlier benchjson output and records, for
// every benchmark present in both files (matched by name, sub-benchmark
// path included), the ns/op speedup and the allocs/op before and after.
func (o *Output) compareBaseline(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base Output
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	o.Baseline = path
	for _, e := range o.Benchmarks {
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		d := Delta{
			Name:            e.Name,
			BaselineNsPerOp: b.NsPerOp,
			NsPerOp:         e.NsPerOp,
			Speedup:         b.NsPerOp / e.NsPerOp,
			BaselineAllocs:  b.AllocsPerOp,
			AllocsPerOp:     e.AllocsPerOp,
		}
		if p, ok := uTest(b.NsSamples, e.NsSamples); ok {
			d.PValue = p
		}
		o.VsBaseline = append(o.VsBaseline, d)
	}
	if len(o.VsBaseline) == 0 {
		return fmt.Errorf("-baseline %s: no benchmark names in common", path)
	}
	return nil
}

// checkGate fails when any vs_baseline speedup is below min — e.g. with
// -gate 0.85, a benchmark more than 15% slower than its committed
// baseline fails the build. A below-gate benchmark whose Mann–Whitney
// p-value exceeds alpha is reported as noise, not failed: the two sample
// sets are statistically indistinguishable, so the median shift carries
// no evidence of a real regression (benchstat's "~"). Benchmarks without
// samples on both sides are gated on the median alone, as before.
func (o *Output) checkGate(min, alpha float64) error {
	var bad []string
	noisy := 0
	for _, d := range o.VsBaseline {
		if d.Speedup >= min {
			continue
		}
		if d.PValue > alpha {
			noisy++
			fmt.Fprintf(os.Stderr, "benchjson: %s below gate (speedup %.2f) but not significant (p=%.3f > %.2f); ignoring\n",
				d.Name, d.Speedup, d.PValue, alpha)
			continue
		}
		msg := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (speedup %.2f < gate %.2f",
			d.Name, d.NsPerOp, d.BaselineNsPerOp, d.Speedup, min)
		if d.PValue > 0 {
			msg += fmt.Sprintf(", p=%.3f", d.PValue)
		}
		bad = append(bad, msg+")")
	}
	if len(bad) > 0 {
		return fmt.Errorf("perf regression gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// checkAllocGate fails when any vs_baseline allocation ratio — baseline
// allocs/op over current allocs/op, so 2.0 means the code allocates half
// as much — is below min. Unlike ns/op, allocs/op is essentially
// noise-free (the allocator is deterministic at steady state), so there
// is no significance test: any benchmark allocating more than the
// threshold allows fails outright. Benchmarks without allocation counts
// on both sides are skipped.
func (o *Output) checkAllocGate(min float64) error {
	var bad []string
	for _, d := range o.VsBaseline {
		if d.BaselineAllocs == 0 || d.AllocsPerOp == 0 {
			continue
		}
		ratio := float64(d.BaselineAllocs) / float64(d.AllocsPerOp)
		if ratio >= min {
			continue
		}
		bad = append(bad, fmt.Sprintf("%s: %d allocs/op vs baseline %d (ratio %.2f < gate %.2f)",
			d.Name, d.AllocsPerOp, d.BaselineAllocs, ratio, min))
	}
	if len(bad) > 0 {
		return fmt.Errorf("allocation regression gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// historyLine is one appended record of the perf log: enough to replot
// the trajectory without the full per-run files.
type historyLine struct {
	Time           string             `json:"time"`
	Source         string             `json:"source"`
	NsPerOp        map[string]float64 `json:"ns_per_op"`
	AllocsPerOp    map[string]int64   `json:"allocs_per_op,omitempty"`
	Speedups       []Speedup          `json:"scale_speedups,omitempty"`
	WorkerSpeedups []WorkerSpeedup    `json:"worker_speedups,omitempty"`
}

// appendHistory appends one JSON line to path (creating it if needed).
func (o *Output) appendHistory(path, source string, now time.Time) error {
	if source == "" {
		source = "stdin"
	}
	h := historyLine{
		Time:           now.Format(time.RFC3339),
		Source:         source,
		NsPerOp:        make(map[string]float64, len(o.Benchmarks)),
		Speedups:       o.Speedups,
		WorkerSpeedups: o.WorkerSpeedups,
	}
	for _, e := range o.Benchmarks {
		h.NsPerOp[e.Name] = e.NsPerOp
		if e.AllocsPerOp != 0 {
			if h.AllocsPerOp == nil {
				h.AllocsPerOp = map[string]int64{}
			}
			h.AllocsPerOp[e.Name] = e.AllocsPerOp
		}
	}
	data, err := json.Marshal(h)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("-history: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("-history: %w", err)
	}
	return nil
}

// summarizeHistory renders an appended BENCH_history.jsonl as a
// per-benchmark TSV trend table: one row per benchmark, one column per
// recorded run (chronological file order), plus a trend column of
// last-over-first — above 1.0 the benchmark got slower over the log.
func summarizeHistory(path string, w io.Writer) error {
	lines, err := readHistory(path)
	if err != nil {
		return fmt.Errorf("-history-summary: %w", err)
	}
	names := map[string]bool{}
	for _, h := range lines {
		for name := range h.NsPerOp {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d runs, %s .. %s (ns/op; '-' = benchmark absent from that run)\n",
		len(lines), lines[0].Time, lines[len(lines)-1].Time)
	fmt.Fprint(bw, "benchmark")
	for _, h := range lines {
		fmt.Fprintf(bw, "\t%s", h.Time)
	}
	fmt.Fprint(bw, "\ttrend\n")
	for _, name := range sorted {
		fmt.Fprint(bw, name)
		var first, last float64
		for _, h := range lines {
			v, ok := h.NsPerOp[name]
			if !ok {
				fmt.Fprint(bw, "\t-")
				continue
			}
			if first == 0 {
				first = v
			}
			last = v
			fmt.Fprintf(bw, "\t%.0f", v)
		}
		if first > 0 && last > 0 {
			fmt.Fprintf(bw, "\t%.2fx\n", last/first)
		} else {
			fmt.Fprint(bw, "\t-\n")
		}
	}
	return bw.Flush()
}

// readHistory loads an appended BENCH_history.jsonl file.
func readHistory(path string) ([]historyLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []historyLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var h historyLine
		if err := json.Unmarshal([]byte(text), &h); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, len(lines)+1, err)
		}
		lines = append(lines, h)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%s holds no history lines", path)
	}
	return lines, nil
}

// plotColors is the polyline palette, cycled across benchmarks.
var plotColors = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// plotHistory renders the history log as an SVG line chart: one polyline
// per benchmark, each run's ns/op normalized to that benchmark's first
// recorded value, so every line starts at 1.0 and drops below it when
// the benchmark gets faster. The output is deterministic for a given
// history file (benchmarks sorted by name, fixed palette cycling).
func plotHistory(path, out string) error {
	lines, err := readHistory(path)
	if err != nil {
		return fmt.Errorf("-history-plot: %w", err)
	}
	names := map[string]bool{}
	for _, h := range lines {
		for name := range h.NsPerOp {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	// Normalized series per benchmark; runs where it is absent carry NaN
	// and break the polyline.
	series := make(map[string][]float64, len(sorted))
	maxRatio := 1.0
	for _, name := range sorted {
		vals := make([]float64, len(lines))
		first := 0.0
		for i, h := range lines {
			v, ok := h.NsPerOp[name]
			if !ok || v <= 0 {
				vals[i] = -1 // absent
				continue
			}
			if first == 0 {
				first = v
			}
			vals[i] = v / first
			if vals[i] > maxRatio {
				maxRatio = vals[i]
			}
		}
		series[name] = vals
	}

	const (
		plotW, plotH = 640, 320
		marginL      = 56
		marginT      = 24
		legendW      = 360
		marginB      = 40
	)
	width := marginL + plotW + legendW
	height := marginT + plotH + marginB
	x := func(i int) float64 {
		if len(lines) == 1 {
			return marginL + plotW/2
		}
		return marginL + float64(i)*plotW/float64(len(lines)-1)
	}
	y := func(ratio float64) float64 {
		return marginT + plotH - ratio/maxRatio*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="14" font-size="13">ns/op relative to first recorded run (%d runs, %s .. %s)</text>`+"\n",
		marginL, len(lines), lines[0].Time, lines[len(lines)-1].Time)
	// Axes and gridlines at 0.5 steps of the normalized ratio.
	for r := 0.0; r <= maxRatio+1e-9; r += 0.5 {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y(r), marginL+plotW, y(r))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%.1fx</text>`+"\n",
			marginL-6, y(r)+4, r)
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555">run 1</text>`+"\n", marginL, marginT+plotH+16)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="#555">run %d</text>`+"\n",
		marginL+plotW, marginT+plotH+16, len(lines))

	for bi, name := range sorted {
		color := plotColors[bi%len(plotColors)]
		var pts []string
		flush := func() {
			if len(pts) > 1 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
					strings.Join(pts, " "), color)
			} else if len(pts) == 1 {
				fmt.Fprintf(&b, `<circle cx="%s" r="2" fill="%s"/>`+"\n",
					strings.Replace(pts[0], ",", `" cy="`, 1), color)
			}
			pts = pts[:0]
		}
		for i, v := range series[name] {
			if v < 0 {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(v)))
		}
		flush()
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n",
			marginL+plotW+12, marginT+14+14*bi, color, name)
	}
	b.WriteString("</svg>\n")

	if out == "" {
		_, err = os.Stdout.WriteString(b.String())
		return err
	}
	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d-benchmark trend chart to %s\n", len(sorted), out)
	return nil
}

// parseLine decodes one testing-package benchmark line:
//
//	BenchmarkX/clients=1000/shards=8-4  1  2900000000 ns/op  12 B/op  3 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	var e Entry
	e.Name = fields[0]
	// Strip the -GOMAXPROCS suffix the harness appends.
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name = e.Name[:i]
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.Iterations = iter
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if e.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Entry{}, false
			}
		case "B/op":
			e.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			e.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	for _, part := range strings.Split(e.Name, "/") {
		if v, ok := strings.CutPrefix(part, "clients="); ok {
			e.Clients, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(part, "shards="); ok {
			e.Shards, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(part, "workers="); ok {
			e.Workers, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(part, "sites="); ok {
			e.Sites, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(part, "segs="); ok {
			e.Segs, _ = strconv.Atoi(v)
		}
	}
	return e, true
}

// deriveSpeedups computes, per (benchmark root, clients) group, the
// wall-clock speedup of the highest shard count over shards=1.
func deriveSpeedups(entries []Entry) []Speedup {
	type key struct {
		root    string
		clients int
	}
	groups := map[key][]Entry{}
	var order []key
	for _, e := range entries {
		if e.Shards == 0 || e.Workers != 0 {
			continue
		}
		k := key{strings.SplitN(e.Name, "/", 2)[0], e.Clients}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	var out []Speedup
	for _, k := range order {
		var base, best *Entry
		for i := range groups[k] {
			e := &groups[k][i]
			if e.Shards == 1 {
				base = e
			} else if best == nil || e.Shards > best.Shards {
				best = e
			}
		}
		if base == nil || best == nil {
			continue
		}
		out = append(out, Speedup{
			Benchmark:  k.root,
			Clients:    k.clients,
			Shards:     best.Shards,
			OverShards: 1,
			WallClock:  base.NsPerOp / best.NsPerOp,
		})
	}
	return out
}

// deriveWorkerSpeedups computes, per (benchmark root, clients, shards)
// group, the wall-clock speedup of the highest worker count over
// workers=1.
func deriveWorkerSpeedups(entries []Entry) []WorkerSpeedup {
	type key struct {
		root    string
		clients int
		shards  int
	}
	groups := map[key][]Entry{}
	var order []key
	for _, e := range entries {
		if e.Workers == 0 {
			continue
		}
		k := key{strings.SplitN(e.Name, "/", 2)[0], e.Clients, e.Shards}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	var out []WorkerSpeedup
	for _, k := range order {
		var base, best *Entry
		for i := range groups[k] {
			e := &groups[k][i]
			if e.Workers == 1 {
				base = e
			} else if best == nil || e.Workers > best.Workers {
				best = e
			}
		}
		if base == nil || best == nil {
			continue
		}
		out = append(out, WorkerSpeedup{
			Benchmark:   k.root,
			Clients:     k.clients,
			Shards:      k.shards,
			Workers:     best.Workers,
			OverWorkers: 1,
			WallClock:   base.NsPerOp / best.NsPerOp,
		})
	}
	return out
}
