package netsim

import (
	"testing"
	"time"
)

// windowHook is a miniature schedule-driven fault hook: partitions stall
// RPCs until the window closes, delay windows add a fixed latency, drop
// windows lose every k-th RPC. It mirrors the shape of the hook that
// internal/faults installs, driven here by an explicit test clock.
type windowHook struct {
	now time.Duration

	partFrom, partTo   time.Duration // client partition window
	partServer         int16         // server whose outage stalls RPCs (-2 = none)
	srvFrom, srvTo     time.Duration
	delayFrom, delayTo time.Duration
	delay              time.Duration
	dropFrom, dropTo   time.Duration
	dropEvery          int
	retry              time.Duration

	rpcs int
}

func (h *windowHook) Outcome(server int16, client int32, class Class, payload int64) Outcome {
	var o Outcome
	if h.now >= h.partFrom && h.now < h.partTo {
		o.ExtraDelay += h.partTo - h.now
	}
	if server == h.partServer && h.now >= h.srvFrom && h.now < h.srvTo {
		o.ExtraDelay += h.srvTo - h.now
	}
	if h.now >= h.delayFrom && h.now < h.delayTo {
		o.ExtraDelay += h.delay
	}
	if h.dropEvery > 0 && h.now >= h.dropFrom && h.now < h.dropTo {
		h.rpcs++
		if h.rpcs%h.dropEvery == 0 {
			o.Dropped++
			o.ExtraDelay += h.retry
		}
	}
	return o
}

func TestFaultHookPerturbations(t *testing.T) {
	const sec = time.Second
	base := New(DefaultConfig()).RPC(1, Control, 0) // healthy baseline latency

	tests := []struct {
		name string
		hook *windowHook
		// one RPC issued at each listed time, to server 0 for client 1
		at         []time.Duration
		wantExtra  []time.Duration // extra delay beyond baseline per RPC
		wantDrops  int64
		wantRetx   int64
		wantStalls int64
	}{
		{
			name:      "client partition stalls until heal",
			hook:      &windowHook{partServer: -2, partFrom: 10 * sec, partTo: 40 * sec},
			at:        []time.Duration{5 * sec, 10 * sec, 25 * sec, 40 * sec},
			wantExtra: []time.Duration{0, 30 * sec, 15 * sec, 0},
			// 10s and 25s RPCs stall; window edges are half-open.
			wantStalls: 2,
		},
		{
			name:      "zero-duration partition perturbs nothing",
			hook:      &windowHook{partServer: -2, partFrom: 10 * sec, partTo: 10 * sec},
			at:        []time.Duration{9 * sec, 10 * sec, 11 * sec},
			wantExtra: []time.Duration{0, 0, 0},
		},
		{
			name: "back-to-back faults: client partition then server outage",
			hook: &windowHook{partServer: 0, partFrom: 10 * sec, partTo: 20 * sec,
				srvFrom: 20 * sec, srvTo: 30 * sec},
			at:        []time.Duration{15 * sec, 20 * sec, 29 * sec, 30 * sec},
			wantExtra: []time.Duration{5 * sec, 10 * sec, 1 * sec, 0},
			wantStalls: 3,
		},
		{
			name:       "delay window adds fixed latency per RPC",
			hook:       &windowHook{partServer: -2, delayFrom: 0, delayTo: 60 * sec, delay: 20 * time.Millisecond},
			at:         []time.Duration{sec, 2 * sec, 61 * sec},
			wantExtra:  []time.Duration{20 * time.Millisecond, 20 * time.Millisecond, 0},
			wantStalls: 2,
		},
		{
			name:       "drop window loses every 2nd RPC and charges the retry timeout",
			hook:       &windowHook{partServer: -2, dropFrom: 0, dropTo: 60 * sec, dropEvery: 2, retry: 500 * time.Millisecond},
			at:         []time.Duration{sec, 2 * sec, 3 * sec, 4 * sec},
			wantExtra:  []time.Duration{0, 500 * time.Millisecond, 0, 500 * time.Millisecond},
			wantDrops:  2,
			wantRetx:   2,
			wantStalls: 2,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n := New(DefaultConfig())
			n.SetHook(tc.hook)
			for i, at := range tc.at {
				tc.hook.now = at
				got := n.RPCTo(0, 1, Control, 0)
				if want := base + tc.wantExtra[i]; got != want {
					t.Errorf("RPC at %v: latency %v, want %v", at, got, want)
				}
			}
			st := n.FaultStats()
			if st.DroppedOps != tc.wantDrops || st.Retransmit != tc.wantRetx || st.StalledOps != tc.wantStalls {
				t.Errorf("fault stats = %+v, want drops=%d retx=%d stalls=%d",
					st, tc.wantDrops, tc.wantRetx, tc.wantStalls)
			}
			if st.StallTime < 0 {
				t.Errorf("negative stall time %v", st.StallTime)
			}
		})
	}
}

func TestRPCToScopesServerOutage(t *testing.T) {
	// A server-0 outage stalls only RPCs addressed to server 0; traffic to
	// server 1 and AnyServer traffic pass untouched.
	h := &windowHook{partServer: 0, srvFrom: 0, srvTo: 30 * time.Second}
	n := New(DefaultConfig())
	n.SetHook(h)
	h.now = 10 * time.Second
	base := New(DefaultConfig()).RPC(1, Control, 0)
	if got := n.RPCTo(0, 1, Control, 0); got != base+20*time.Second {
		t.Errorf("RPC to down server = %v, want %v", got, base+20*time.Second)
	}
	if got := n.RPCTo(1, 1, Control, 0); got != base {
		t.Errorf("RPC to healthy server = %v, want %v", got, base)
	}
	if got := n.RPC(1, Control, 0); got != base {
		t.Errorf("AnyServer RPC = %v, want %v", got, base)
	}
}

func TestFaultStallExcludedFromWireBusy(t *testing.T) {
	// Stall time is waiting, not transfer: Busy() must not include it.
	n := New(DefaultConfig())
	n.SetHook(&windowHook{partServer: -2, partFrom: 0, partTo: time.Hour})
	n.RPCTo(0, 1, Control, 0)
	if n.Busy() >= time.Hour {
		t.Errorf("wire busy %v includes fault stall", n.Busy())
	}
	if st := n.FaultStats(); st.StallTime != time.Hour {
		t.Errorf("stall time = %v, want 1h", st.StallTime)
	}
}
