// Package sim provides the deterministic discrete-event simulation engine
// underlying the whole reproduction. All the cluster machinery (clients,
// servers, caches, daemons, the workload generators) runs on one virtual
// clock driven by an event scheduler, so a run with a fixed seed is exactly
// reproducible — the property that lets the experiment harness regenerate
// the paper's tables bit-for-bit across machines.
//
// The scheduler is allocation-free in steady state: one-shot events live in
// a free-list arena ordered by an inlined 4-ary index min-heap (heap.go),
// and recurring timers created by Every live in a hierarchical timer wheel
// (wheel.go). Both structures key events by (time, seq), where seq is a
// single counter shared across them, so the merged firing order — and
// therefore every report byte — is identical to the original single-heap
// implementation.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual time measured from the start of the simulation.
type Time = time.Duration

// Sim is a discrete-event simulator. It is not safe for concurrent use;
// each simulated cluster owns one Sim and runs single-threaded (parallel
// experiments run independent Sims).
type Sim struct {
	now   Time
	seq   uint64
	pq    eventQueue // one-shot events (At/After)
	wheel wheel      // recurring timers (Every)
	rng   *Rand
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{pq: newEventQueue(), wheel: newWheel(), rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	s.pq.push(s.pq.alloc(t, s.seq, fn))
}

// After schedules fn to run d after the current time. Negative d is
// clamped to zero.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Ticker is a cancellable periodic event created by Every.
type Ticker struct {
	s       *Sim
	idx     int32 // armed wheel entry, -1 while firing or after Stop
	stopped bool
}

// Stop cancels future firings of the ticker. The pending wheel entry is
// unlinked and recycled immediately — no tombstone stays behind in any
// queue, so stopped tickers leave Pending unchanged.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.idx >= 0 {
		t.s.wheel.unlink(t.idx)
		t.s.wheel.release(t.idx)
		t.idx = -1
	}
}

// Every schedules fn to run at start and then every period thereafter,
// until the returned Ticker is stopped or the simulation ends. It models
// the paper's daemons (the 5-second cache cleaner, the counter sampler).
// period must be positive.
func (s *Sim) Every(start, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	if start < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", start, s.now))
	}
	s.seq++
	tk := &Ticker{s: s}
	tk.idx = s.wheel.alloc(start, s.seq, period, fn, tk)
	s.wheel.insert(s.now, tk.idx)
	return tk
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event was run.
func (s *Sim) Step() bool {
	at1, seq1, ok1 := s.pq.min()
	at2, seq2, widx, ok2 := s.wheel.min(s.now)
	switch {
	case !ok1 && !ok2:
		return false
	case ok1 && (!ok2 || at1 < at2 || (at1 == at2 && seq1 < seq2)):
		// One-shot event fires. Copy the fields out and release the
		// arena slot before running fn: the callback may schedule new
		// events, growing or reusing the arena.
		i := s.pq.popMin()
		e := &s.pq.pool[i]
		at, fn := e.at, e.fn
		s.pq.release(i)
		s.now = at
		fn()
	default:
		// Recurring timer fires. Unlink it, run the callback with the
		// ticker disarmed (so Stop from inside fn is a plain flag set),
		// then re-arm one period later — consuming the next seq *after*
		// fn has run, exactly as the old self-rescheduling closure did.
		s.wheel.unlink(widx)
		e := &s.wheel.pool[widx]
		fn, tk, period := e.fn, e.tk, e.period
		tk.idx = -1
		s.now = at2
		fn()
		if tk.stopped {
			s.wheel.release(widx)
		} else {
			s.seq++
			e = &s.wheel.pool[widx] // fn may have grown the arena
			e.at = at2 + period
			e.seq = s.seq
			s.wheel.insert(s.now, widx)
			tk.idx = widx
		}
	}
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (s *Sim) RunUntil(t Time) {
	for {
		at, ok := s.NextAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of events still scheduled, counting each armed
// ticker as one event.
func (s *Sim) Pending() int { return s.pq.len() + s.wheel.count }

// NextAt returns the time of the earliest pending event. ok is false when
// no events are scheduled. The conservative parallel executor uses this to
// pick each epoch's start without disturbing the scheduler.
func (s *Sim) NextAt() (t Time, ok bool) {
	at1, seq1, ok1 := s.pq.min()
	at2, seq2, _, ok2 := s.wheel.min(s.now)
	switch {
	case !ok1 && !ok2:
		return 0, false
	case ok1 && (!ok2 || at1 < at2 || (at1 == at2 && seq1 < seq2)):
		return at1, true
	default:
		return at2, true
	}
}

// EventPoolFree returns the number of recycled one-shot event slots waiting
// for reuse (the spritefs_sim_event_pool_free gauge).
func (s *Sim) EventPoolFree() int { return s.pq.freeLen() }

// WheelTimers returns the number of armed recurring timers in the wheel
// (the spritefs_sim_wheel_timers gauge).
func (s *Sim) WheelTimers() int { return s.wheel.count }
