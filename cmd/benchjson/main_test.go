package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: spritefs/internal/scale
BenchmarkScaleEngine/clients=1000/shards=1-4         	       1	3200000000 ns/op	 900000 B/op	    1200 allocs/op
BenchmarkScaleEngine/clients=1000/shards=8-4         	       1	 800000000 ns/op	 950000 B/op	    1300 allocs/op
BenchmarkRecoveryStorm/clients=64-4                  	      10	   1500000 ns/op
PASS
ok  	spritefs/internal/scale	5.1s
`

func TestConvert(t *testing.T) {
	o, err := Convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(o.Benchmarks))
	}
	e := o.Benchmarks[0]
	if e.Name != "BenchmarkScaleEngine/clients=1000/shards=1" ||
		e.Clients != 1000 || e.Shards != 1 ||
		e.NsPerOp != 3.2e9 || e.BytesPerOp != 900000 || e.AllocsPerOp != 1200 {
		t.Errorf("first entry parsed wrong: %+v", e)
	}
	storm := o.Benchmarks[2]
	if storm.Clients != 64 || storm.Shards != 0 || storm.Iterations != 10 {
		t.Errorf("recovery entry parsed wrong: %+v", storm)
	}
	if len(o.Speedups) != 1 {
		t.Fatalf("derived %d speedups, want 1: %+v", len(o.Speedups), o.Speedups)
	}
	s := o.Speedups[0]
	if s.Benchmark != "BenchmarkScaleEngine" || s.Clients != 1000 ||
		s.Shards != 8 || s.OverShards != 1 || s.WallClock != 4.0 {
		t.Errorf("speedup derived wrong: %+v", s)
	}
}

func TestConvertRejectsEmpty(t *testing.T) {
	if _, err := Convert(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestConvertWorkers(t *testing.T) {
	const in = `
BenchmarkScaleWorkers/clients=1000/shards=8/workers=1-4  1  4000000000 ns/op
BenchmarkScaleWorkers/clients=1000/shards=8/workers=8-4  1  1000000000 ns/op
`
	o, err := Convert(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if o.Benchmarks[0].Workers != 1 || o.Benchmarks[1].Workers != 8 {
		t.Errorf("workers= parsed wrong: %+v", o.Benchmarks)
	}
	// Worker-sweep rows must not masquerade as shard speedups.
	if len(o.Speedups) != 0 {
		t.Errorf("worker sweep produced shard speedups: %+v", o.Speedups)
	}
	if len(o.WorkerSpeedups) != 1 {
		t.Fatalf("derived %d worker speedups, want 1: %+v", len(o.WorkerSpeedups), o.WorkerSpeedups)
	}
	w := o.WorkerSpeedups[0]
	if w.Benchmark != "BenchmarkScaleWorkers" || w.Clients != 1000 || w.Shards != 8 ||
		w.Workers != 8 || w.OverWorkers != 1 || w.WallClock != 4.0 {
		t.Errorf("worker speedup derived wrong: %+v", w)
	}
}

// TestConvertWANScale pins the hierarchical-topology labels: sites= and
// segs= name parts land in their own fields, and the site sweep derives
// no shard speedups (sites is a pricing axis, not a parallelism axis).
func TestConvertWANScale(t *testing.T) {
	const in = `
BenchmarkWANScale/clients=1000/sites=1/segs=8-4  1  3000000000 ns/op
BenchmarkWANScale/clients=1000/sites=4/segs=8-4  1  3500000000 ns/op
`
	o, err := Convert(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(o.Benchmarks))
	}
	flat, wan := o.Benchmarks[0], o.Benchmarks[1]
	if flat.Clients != 1000 || flat.Sites != 1 || flat.Segs != 8 || wan.Sites != 4 || wan.Segs != 8 {
		t.Errorf("sites=/segs= parsed wrong: %+v %+v", flat, wan)
	}
	if len(o.Speedups) != 0 || len(o.WorkerSpeedups) != 0 {
		t.Errorf("site sweep derived speedups: %+v %+v", o.Speedups, o.WorkerSpeedups)
	}
}

// TestAggregateMedian pins the -count=N behaviour: repeated runs of one
// benchmark collapse to a single median entry, so one outlier run cannot
// trip the regression gate.
func TestAggregateMedian(t *testing.T) {
	const in = `
BenchmarkHot-4  10  100.0 ns/op  64 B/op  2 allocs/op
BenchmarkHot-4  10  900.0 ns/op  64 B/op  2 allocs/op
BenchmarkHot-4  10  110.0 ns/op  80 B/op  4 allocs/op
BenchmarkCold-4  1  50.0 ns/op
`
	o, err := Convert(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 2 {
		t.Fatalf("aggregated to %d benchmarks, want 2: %+v", len(o.Benchmarks), o.Benchmarks)
	}
	hot := o.Benchmarks[0]
	if hot.Name != "BenchmarkHot" || hot.Runs != 3 || hot.Iterations != 30 {
		t.Errorf("aggregation bookkeeping wrong: %+v", hot)
	}
	if hot.NsPerOp != 110.0 || hot.BytesPerOp != 64 || hot.AllocsPerOp != 2 {
		t.Errorf("median wrong (outlier leaked in): %+v", hot)
	}
	cold := o.Benchmarks[1]
	if cold.Runs != 0 || cold.NsPerOp != 50.0 {
		t.Errorf("single-run entry altered by aggregation: %+v", cold)
	}
	// Even sample count: mean of the two middle values.
	if m := median([]float64{1, 2, 10, 100}); m != 6 {
		t.Errorf("even-count median = %v, want 6", m)
	}
}

func TestCompareBaseline(t *testing.T) {
	const baseline = `{
  "benchmarks": [
    {"name": "BenchmarkEventThroughput", "iterations": 1, "ns_per_op": 66.0, "allocs_per_op": 1},
    {"name": "BenchmarkGone", "iterations": 1, "ns_per_op": 10.0}
  ]
}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := Convert(strings.NewReader(
		"BenchmarkEventThroughput-4  100  33.0 ns/op  0 B/op  0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.compareBaseline(path); err != nil {
		t.Fatal(err)
	}
	if o.Baseline != path || len(o.VsBaseline) != 1 {
		t.Fatalf("comparison wrong: baseline=%q deltas=%+v", o.Baseline, o.VsBaseline)
	}
	d := o.VsBaseline[0]
	if d.Name != "BenchmarkEventThroughput" || d.Speedup != 2.0 ||
		d.BaselineAllocs != 1 || d.AllocsPerOp != 0 {
		t.Errorf("delta derived wrong: %+v", d)
	}

	// No names in common is an error, not a silently empty section.
	o2, err := Convert(strings.NewReader("BenchmarkOther-4  1  5.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.compareBaseline(path); err == nil {
		t.Error("disjoint baseline accepted")
	}
	// A missing baseline file fails fast.
	if err := o.compareBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// TestCheckGate pins the regression-gate arithmetic: a benchmark 2x
// faster passes any sane gate; one 20% slower fails a 0.85 gate and the
// error names the offender.
func TestCheckGate(t *testing.T) {
	o := &Output{VsBaseline: []Delta{
		{Name: "BenchmarkFast", BaselineNsPerOp: 100, NsPerOp: 50, Speedup: 2.0},
		{Name: "BenchmarkSlow", BaselineNsPerOp: 100, NsPerOp: 125, Speedup: 0.8},
	}}
	err := o.checkGate(0.85, 0.1)
	if err == nil {
		t.Fatal("20% regression passed a 0.85 gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkSlow") || strings.Contains(err.Error(), "BenchmarkFast") {
		t.Errorf("gate error names the wrong benchmarks: %v", err)
	}
	o.VsBaseline = o.VsBaseline[:1]
	if err := o.checkGate(0.85, 0.1); err != nil {
		t.Errorf("pure speedup failed the gate: %v", err)
	}
}

// TestAppendHistory pins the perf-log format: one JSON object per line,
// appended, carrying the per-benchmark ns/op and the derived speedups.
func TestAppendHistory(t *testing.T) {
	o, err := Convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	when := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if err := o.appendHistory(path, "BENCH_scale.json", when); err != nil {
		t.Fatal(err)
	}
	if err := o.appendHistory(path, "BENCH_scale.json", when.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []historyLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var h historyLine
		if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
			t.Fatalf("history line is not valid JSON: %v\n%s", err, sc.Text())
		}
		lines = append(lines, h)
	}
	if len(lines) != 2 {
		t.Fatalf("appended %d lines, want 2", len(lines))
	}
	h := lines[0]
	if h.Time != "2026-08-08T12:00:00Z" || h.Source != "BENCH_scale.json" {
		t.Errorf("history metadata wrong: %+v", h)
	}
	if h.NsPerOp["BenchmarkScaleEngine/clients=1000/shards=8"] != 8e8 {
		t.Errorf("history ns_per_op wrong: %+v", h.NsPerOp)
	}
	if len(h.Speedups) != 1 || h.Speedups[0].WallClock != 4.0 {
		t.Errorf("history speedups wrong: %+v", h.Speedups)
	}
	if lines[1].Time != "2026-08-08T13:00:00Z" {
		t.Errorf("second line not appended after the first: %+v", lines[1])
	}
}
