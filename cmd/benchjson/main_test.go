package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: spritefs/internal/scale
BenchmarkScaleEngine/clients=1000/shards=1-4         	       1	3200000000 ns/op	 900000 B/op	    1200 allocs/op
BenchmarkScaleEngine/clients=1000/shards=8-4         	       1	 800000000 ns/op	 950000 B/op	    1300 allocs/op
BenchmarkRecoveryStorm/clients=64-4                  	      10	   1500000 ns/op
PASS
ok  	spritefs/internal/scale	5.1s
`

func TestConvert(t *testing.T) {
	o, err := Convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(o.Benchmarks))
	}
	e := o.Benchmarks[0]
	if e.Name != "BenchmarkScaleEngine/clients=1000/shards=1" ||
		e.Clients != 1000 || e.Shards != 1 ||
		e.NsPerOp != 3.2e9 || e.BytesPerOp != 900000 || e.AllocsPerOp != 1200 {
		t.Errorf("first entry parsed wrong: %+v", e)
	}
	storm := o.Benchmarks[2]
	if storm.Clients != 64 || storm.Shards != 0 || storm.Iterations != 10 {
		t.Errorf("recovery entry parsed wrong: %+v", storm)
	}
	if len(o.Speedups) != 1 {
		t.Fatalf("derived %d speedups, want 1: %+v", len(o.Speedups), o.Speedups)
	}
	s := o.Speedups[0]
	if s.Benchmark != "BenchmarkScaleEngine" || s.Clients != 1000 ||
		s.Shards != 8 || s.OverShards != 1 || s.WallClock != 4.0 {
		t.Errorf("speedup derived wrong: %+v", s)
	}
}

func TestConvertRejectsEmpty(t *testing.T) {
	if _, err := Convert(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCompareBaseline(t *testing.T) {
	const baseline = `{
  "benchmarks": [
    {"name": "BenchmarkEventThroughput", "iterations": 1, "ns_per_op": 66.0, "allocs_per_op": 1},
    {"name": "BenchmarkGone", "iterations": 1, "ns_per_op": 10.0}
  ]
}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := Convert(strings.NewReader(
		"BenchmarkEventThroughput-4  100  33.0 ns/op  0 B/op  0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.compareBaseline(path); err != nil {
		t.Fatal(err)
	}
	if o.Baseline != path || len(o.VsBaseline) != 1 {
		t.Fatalf("comparison wrong: baseline=%q deltas=%+v", o.Baseline, o.VsBaseline)
	}
	d := o.VsBaseline[0]
	if d.Name != "BenchmarkEventThroughput" || d.Speedup != 2.0 ||
		d.BaselineAllocs != 1 || d.AllocsPerOp != 0 {
		t.Errorf("delta derived wrong: %+v", d)
	}

	// No names in common is an error, not a silently empty section.
	o2, err := Convert(strings.NewReader("BenchmarkOther-4  1  5.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := o2.compareBaseline(path); err == nil {
		t.Error("disjoint baseline accepted")
	}
	// A missing baseline file fails fast.
	if err := o.compareBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
}
