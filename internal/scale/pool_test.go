package scale_test

import (
	"testing"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

// poolConfig is a chatty little topology whose runs route thousands of
// messages, so pooling behaviour is visible in the counters.
func poolConfig() scale.Config {
	p := workload.Default(7)
	p.NumClients = 16
	p.DailyUsers = 12
	p.OccasionalUsers = 4
	cfg := scale.Config{Base: p, Shards: 4, ServersPerShard: 1}
	cfg.Remote = scale.DefaultRemote()
	cfg.Remote.OpsPerClientHour = 600
	return cfg
}

// TestMessagePoolSteadyState pins the recycling contract behind the
// benchmarks' allocs/op numbers: a run seeded with the drained free
// lists of an identical previous run allocates no new messages at all,
// because every message the protocol needs already sits in some shard's
// pool. Messages recycle into the consuming shard's pool rather than the
// allocator's, so this also proves the warm pool distribution is
// self-sustaining, not just large enough in aggregate.
func TestMessagePoolSteadyState(t *testing.T) {
	cfg := poolConfig()
	opts := scale.RunOptions{Horizon: 10 * time.Minute, Parallel: true}

	cold := scale.MustNew(cfg)
	coldStats := cold.Run(opts)
	if coldStats.Exec.MsgAllocs == 0 {
		t.Fatal("cold run allocated no messages; the test exercises nothing")
	}
	if coldStats.Exec.Routed == 0 {
		t.Fatal("cold run routed no messages; the test exercises nothing")
	}

	warmCfg := cfg
	warmCfg.SeedMessages = cold.DrainMessagePools()
	warm := scale.MustNew(warmCfg)
	warmStats := warm.Run(opts)
	if warmStats.Exec.MsgAllocs != 0 {
		t.Errorf("warm run allocated %d messages (cold run: %d); free lists are not reaching steady state",
			warmStats.Exec.MsgAllocs, coldStats.Exec.MsgAllocs)
	}
	if warmStats.Exec.Routed != coldStats.Exec.Routed {
		t.Errorf("seeding the pools changed behaviour: cold routed %d, warm routed %d",
			coldStats.Exec.Routed, warmStats.Exec.Routed)
	}
}

// TestDrainMessagePoolsEmpties pins that a drain actually transfers
// ownership: draining twice yields nothing the second time.
func TestDrainMessagePoolsEmpties(t *testing.T) {
	cfg := poolConfig()
	e := scale.MustNew(cfg)
	e.Run(scale.RunOptions{Horizon: 5 * time.Minute, Parallel: true})
	first := e.DrainMessagePools()
	var n int
	for _, p := range first {
		n += len(p)
	}
	if n == 0 {
		t.Fatal("run left no messages in the pools; the test exercises nothing")
	}
	for i, p := range e.DrainMessagePools() {
		if len(p) != 0 {
			t.Errorf("second drain returned %d messages for shard %d; first drain should have emptied it", len(p), i)
		}
	}
}
