package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// errEOF is the stream-end sentinel; it is io.EOF so callers can compare
// against the standard value.
var errEOF = io.EOF

// Binary format: a fixed 8-byte header ("SPRTRC" + 2-byte version) followed
// by fixed-width little-endian records. Fixed width keeps the codec trivial
// and the traces seekable; a day-long trace is a few tens of megabytes.
const (
	magic      = "SPRTRC"
	version    = uint16(1)
	recordSize = 8 + 1 + 1 + 2 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 // = 64

	// MaxVersion is the newest header version this codec understands. The
	// record layout is identical across versions; version 2 marks streams
	// that were imported from a foreign format (or otherwise derived) by
	// internal/traceio, so that Merge can refuse to interleave them with
	// native captures whose timebases and ID spaces are unrelated.
	MaxVersion = uint16(2)
)

// Writer encodes records to an io.Writer in binary format.
type Writer struct {
	w   *bufio.Writer
	n   int64
	ver uint16
	buf [recordSize]byte
	err error
}

// NewWriter returns a Writer that writes the version-1 file header
// immediately. Version 1 is the native-capture version; importers use
// NewWriterVersion to stamp derived streams.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterVersion(w, version)
}

// NewWriterVersion is NewWriter with an explicit header version in
// [1, MaxVersion]. The record layout is the same for every version; the
// header version only declares which lineage the stream belongs to.
func NewWriterVersion(w io.Writer, ver uint16) (*Writer, error) {
	if ver < 1 || ver > MaxVersion {
		return nil, fmt.Errorf("trace: cannot write version %d (supported: 1..%d)", ver, MaxVersion)
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	var hdr [8]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint16(hdr[6:], ver)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, ver: ver}, nil
}

// Write appends one record. Errors are sticky.
func (w *Writer) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	b := w.buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(r.Time))
	b[8] = byte(r.Kind)
	b[9] = r.Flags
	binary.LittleEndian.PutUint16(b[10:], uint16(r.Server))
	binary.LittleEndian.PutUint32(b[12:], uint32(r.Client))
	binary.LittleEndian.PutUint32(b[16:], uint32(r.User))
	binary.LittleEndian.PutUint32(b[20:], uint32(r.Proc))
	binary.LittleEndian.PutUint64(b[24:], r.File)
	binary.LittleEndian.PutUint64(b[32:], r.Handle)
	binary.LittleEndian.PutUint64(b[40:], uint64(r.Offset))
	binary.LittleEndian.PutUint64(b[48:], uint64(r.Length))
	binary.LittleEndian.PutUint64(b[56:], uint64(r.Size))
	if _, err := w.w.Write(b); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Version returns the header version this writer stamped.
func (w *Writer) Version() uint16 { return w.ver }

// Flush flushes buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Reader decodes a binary trace stream. It implements Stream.
type Reader struct {
	r   *bufio.Reader
	ver uint16
	buf [recordSize]byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:6]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:6])
	}
	v := binary.LittleEndian.Uint16(hdr[6:])
	if v < 1 || v > MaxVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br, ver: v}, nil
}

// Version returns the header version declared by the stream.
func (r *Reader) Version() uint16 { return r.ver }

// Next returns the next record, or io.EOF at end of stream. A truncated
// final record is reported as io.ErrUnexpectedEOF.
func (r *Reader) Next() (Record, error) {
	b := r.buf[:]
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading record: %w", err)
	}
	rec := Record{
		Time:   time.Duration(binary.LittleEndian.Uint64(b[0:])),
		Kind:   Kind(b[8]),
		Flags:  b[9],
		Server: int16(binary.LittleEndian.Uint16(b[10:])),
		Client: int32(binary.LittleEndian.Uint32(b[12:])),
		User:   int32(binary.LittleEndian.Uint32(b[16:])),
		Proc:   int32(binary.LittleEndian.Uint32(b[20:])),
		File:   binary.LittleEndian.Uint64(b[24:]),
		Handle: binary.LittleEndian.Uint64(b[32:]),
		Offset: int64(binary.LittleEndian.Uint64(b[40:])),
		Length: int64(binary.LittleEndian.Uint64(b[48:])),
		Size:   int64(binary.LittleEndian.Uint64(b[56:])),
	}
	if !rec.Kind.Valid() {
		return Record{}, fmt.Errorf("trace: corrupt record kind %d", rec.Kind)
	}
	return rec, nil
}
