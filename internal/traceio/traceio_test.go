package traceio

import (
	"strings"
	"testing"
	"time"

	"spritefs/internal/trace"
)

const sampleCSV = `# time,client,op,path,offset,length
0.000,ws1,open,/home/a/paper.tex,,
0.010,ws1,read,/home/a/paper.tex,0,4096
0.020,ws1,read,/home/a/paper.tex,4096,4096
0.030,ws2,write,/home/b/out.log,0,512
0.040,ws1,close,/home/a/paper.tex,,
0.050,ws2,write,/home/b/out.log,512,512
0.060,ws2,seek,/home/b/out.log,0,
0.070,ws2,read,/home/b/out.log,,256
0.080,ws2,delete,/tmp/scratch,,
`

func importSample(t *testing.T) ([]trace.Record, *ImportReport) {
	t.Helper()
	recs, rep, err := ImportCSV(strings.NewReader(sampleCSV), DefaultCSVMapping(), Options{})
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	return recs, rep
}

func TestImportCSVBasics(t *testing.T) {
	recs, rep := importSample(t)
	if rep.Malformed != 0 {
		t.Fatalf("malformed = %d, want 0 (notes: %v)", rep.Malformed, rep.Notes)
	}
	// ws2's first write has no open: one synthesized open, and its handle
	// (plus the delete-only path needs none) is closed at EOF.
	if rep.SynthOpens != 1 {
		t.Errorf("SynthOpens = %d, want 1", rep.SynthOpens)
	}
	if rep.SynthCloses != 1 {
		t.Errorf("SynthCloses = %d, want 1", rep.SynthCloses)
	}
	if rep.Files != 3 {
		t.Errorf("Files = %d, want 3", rep.Files)
	}
	if rep.Clients != 2 {
		t.Errorf("Clients = %d, want 2", rep.Clients)
	}
	if recs[0].Time != 0 {
		t.Errorf("first record at %s, want 0 (time normalization)", recs[0].Time)
	}
	// Every read/write must reference a handle introduced by an open.
	opened := map[uint64]bool{}
	for _, r := range recs {
		switch r.Kind {
		case trace.KindOpen:
			opened[r.Handle] = true
		case trace.KindRead, trace.KindWrite, trace.KindReposition:
			if !opened[r.Handle] {
				t.Errorf("%s record references handle %d with no prior open", r.Kind, r.Handle)
			}
		case trace.KindClose:
			if !opened[r.Handle] {
				t.Errorf("close references handle %d with no prior open", r.Handle)
			}
			delete(opened, r.Handle)
		}
		if int(r.Server) != int(r.File>>48) && r.File != 0 {
			t.Errorf("record server %d does not match file route %d", r.Server, r.File>>48)
		}
	}
	if len(opened) != 0 {
		t.Errorf("%d handles never closed", len(opened))
	}
}

func TestImportCSVSequentialOffsets(t *testing.T) {
	recs, _ := importSample(t)
	// ws2's log file: writes at 0 and 512 (explicit), seek to 0, then an
	// offsetless read which must resume at the seek target.
	var readOff int64 = -1
	for _, r := range recs {
		if r.Kind == trace.KindRead && r.Length == 256 {
			readOff = r.Offset
		}
	}
	if readOff != 0 {
		t.Fatalf("offsetless read after seek(0) landed at %d, want 0", readOff)
	}
}

func TestImportCSVMalformedRows(t *testing.T) {
	in := `0.0,ws1,open,/a,,
not-a-time,ws1,read,/a,0,10
0.1,ws1,frobnicate,/a,0,10
0.2,ws1,read,/a,bad-offset,10
0.3,ws1,stat,/a,,
0.4,ws1,close,/a,,
`
	recs, rep, err := ImportCSV(strings.NewReader(in), DefaultCSVMapping(), Options{})
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if rep.Malformed != 3 {
		t.Errorf("Malformed = %d, want 3 (notes: %v)", rep.Malformed, rep.Notes)
	}
	if rep.Ignored != 1 {
		t.Errorf("Ignored = %d, want 1 (the stat row)", rep.Ignored)
	}
	if len(recs) != 2 {
		t.Errorf("got %d records, want 2 (open+close)", len(recs))
	}
	if len(rep.Notes) == 0 {
		t.Error("expected skip diagnostics in report notes")
	}
}

func TestImportCSVEmptyInput(t *testing.T) {
	for _, in := range []string{"", "# just a comment\n"} {
		if _, _, err := ImportCSV(strings.NewReader(in), DefaultCSVMapping(), Options{}); err == nil {
			t.Errorf("ImportCSV(%q) succeeded, want error", in)
		}
	}
	if _, _, err := ImportStrace(strings.NewReader(""), Options{}); err == nil {
		t.Error("ImportStrace(empty) succeeded, want error")
	}
}

func TestImportCSVOutOfOrderTimestamps(t *testing.T) {
	in := `0.5,ws1,open,/a,,
0.1,ws1,read,/a,0,10
0.9,ws1,close,/a,,
0.2,ws1,read,/a,10,10
`
	recs, rep, err := ImportCSV(strings.NewReader(in), DefaultCSVMapping(), Options{})
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if rep.Reordered == 0 {
		t.Error("Reordered = 0, want > 0")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("output not time-sorted at %d: %s after %s", i, recs[i].Time, recs[i-1].Time)
		}
	}
	// The 0.1s read precedes the 0.5s open in time order, so the open is
	// synthesized for it and the explicit open closes the stale bracket.
	if rep.SynthOpens != 1 {
		t.Errorf("SynthOpens = %d, want 1", rep.SynthOpens)
	}
}

func TestImportCSVDeterministic(t *testing.T) {
	a, _ := importSample(t)
	b, _ := importSample(t)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical imports:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestParseCSVMapping(t *testing.T) {
	m, err := ParseCSVMapping("time=3,client=0,op=1,path=2,offset=-,length=4,unit=us,sep=tab,skip=1,op.wr_blk=write")
	if err != nil {
		t.Fatal(err)
	}
	if m.Time != 3 || m.Client != 0 || m.Offset != -1 || m.TimeUnit != time.Microsecond ||
		m.Comma != '\t' || m.SkipRows != 1 {
		t.Fatalf("mapping mis-parsed: %+v", m)
	}
	if m.Ops["wr_blk"] != trace.KindWrite {
		t.Fatalf("custom op not registered: %+v", m.Ops)
	}
	if _, err := ParseCSVMapping("time=-"); err == nil {
		t.Error("mapping without a time column accepted")
	}
	if _, err := ParseCSVMapping("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
}

const sampleStrace = `1700000000.000100 openat(AT_FDCWD, "/usr/lib/libc.so", O_RDONLY|O_CLOEXEC) = 3
1700000000.000200 read(3, "\x7fELF"..., 832) = 832
1700000000.000300 pread64(3, ""..., 784, 64) = 784
1700000000.000400 close(3) = 0
[pid  4242] 1700000000.000500 openat(AT_FDCWD, "/tmp/build.log", O_WRONLY|O_CREAT, 0644) = 5
[pid  4242] 1700000000.000600 write(5, "gcc -c main.c\n", 14) = 14
[pid  4242] 1700000000.000700 lseek(5, 0, SEEK_SET) = 0
[pid  4242] 1700000000.000800 read(7, "...", 512) = 512
1700000000.000900 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = -1 ENOENT (No such file or directory)
1700000000.001000 getdents64(9, 0x55..., 32768) = 1024
--- SIGCHLD {si_signo=SIGCHLD} ---
+++ exited with 0 +++
1700000000.001100 unlink("/tmp/stale.o") = 0
`

func TestImportStrace(t *testing.T) {
	recs, rep, err := ImportStrace(strings.NewReader(sampleStrace), Options{})
	if err != nil {
		t.Fatalf("ImportStrace: %v (report %s)", err, rep)
	}
	if rep.Malformed != 0 {
		t.Fatalf("malformed = %d (notes %v)", rep.Malformed, rep.Notes)
	}
	// The failed openat must be ignored, not imported.
	for _, r := range recs {
		if r.Kind == trace.KindOpen && r.Size == 0 && r.File == 0 {
			t.Errorf("suspicious open record: %+v", r)
		}
	}
	kinds := map[trace.Kind]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	// Explicit opens: libc + build.log. Synthesized: fd 7 (pid 4242) and
	// the getdents fd 9.
	if kinds[trace.KindOpen] != 4 {
		t.Errorf("opens = %d, want 4 (2 traced + 2 inferred); kinds %v", kinds[trace.KindOpen], kinds)
	}
	if rep.SynthOpens != 2 {
		t.Errorf("SynthOpens = %d, want 2", rep.SynthOpens)
	}
	if kinds[trace.KindRead] != 3 {
		t.Errorf("reads = %d, want 3", kinds[trace.KindRead])
	}
	if kinds[trace.KindDirRead] != 1 {
		t.Errorf("dirreads = %d, want 1", kinds[trace.KindDirRead])
	}
	if kinds[trace.KindDelete] != 1 {
		t.Errorf("deletes = %d, want 1", kinds[trace.KindDelete])
	}
	// pread64's explicit offset must be honored.
	var sawPread bool
	for _, r := range recs {
		if r.Kind == trace.KindRead && r.Length == 784 {
			sawPread = true
			if r.Offset != 64 {
				t.Errorf("pread64 offset = %d, want 64", r.Offset)
			}
		}
	}
	if !sawPread {
		t.Error("pread64 record missing")
	}
	// All handles closed by the end (close traced or synthesized).
	open := map[uint64]bool{}
	for _, r := range recs {
		switch r.Kind {
		case trace.KindOpen:
			open[r.Handle] = true
		case trace.KindClose:
			delete(open, r.Handle)
		}
	}
	if len(open) != 0 {
		t.Errorf("%d handles left open", len(open))
	}
}

func TestImportStraceNoTimestamps(t *testing.T) {
	in := `openat(AT_FDCWD, "/a", O_RDONLY) = 3
read(3, "", 100) = 100
close(3) = 0
`
	recs, _, err := ImportStrace(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatal("synthetic clock not monotone")
		}
	}
	if recs[len(recs)-1].Time == recs[0].Time {
		t.Error("synthetic clock did not advance")
	}
}

func TestImportStraceWallClockWrap(t *testing.T) {
	in := `23:59:59.900 openat(AT_FDCWD, "/a", O_RDONLY) = 3
00:00:00.100 read(3, "", 100) = 100
00:00:00.200 close(3) = 0
`
	recs, _, err := ImportStrace(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := recs[len(recs)-1].Time - recs[0].Time; d <= 0 || d > time.Second {
		t.Fatalf("midnight wrap mishandled: trace spans %s", d)
	}
}

func FuzzImportCSV(f *testing.F) {
	f.Add(sampleCSV)
	f.Add("0.0,ws1,open,/a,,\n")
	f.Add("not,csv,at,all\n\"unterminated")
	f.Add("0.0;ws1;open;/a\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, _, err := ImportCSV(strings.NewReader(in), DefaultCSVMapping(), Options{})
		if err != nil {
			return
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time < recs[i-1].Time {
				t.Fatal("import produced a time-unsorted stream")
			}
		}
		for _, r := range recs {
			if !r.Kind.Valid() {
				t.Fatalf("invalid kind %d emitted", r.Kind)
			}
		}
	})
}

func FuzzImportStrace(f *testing.F) {
	f.Add(sampleStrace)
	f.Add("read(3, \"\", 10) = 10\n")
	f.Add("[pid 1] garbage\n= = =\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, _, err := ImportStrace(strings.NewReader(in), Options{})
		if err != nil {
			return
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time < recs[i-1].Time {
				t.Fatal("import produced a time-unsorted stream")
			}
		}
	})
}
