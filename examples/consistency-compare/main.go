// consistency-compare reproduces the Sections 5.5-5.6 argument in one
// sitting: generate a sharing-heavy trace, show how many stale-data
// errors an NFS-style polling scheme would produce (Table 11), and
// compare the overheads of the three consistency algorithms on the
// write-shared accesses (Table 12).
//
//	go run ./examples/consistency-compare
package main

import (
	"fmt"
	"log"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/consistency"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

func main() {
	// A sharing-heavy community: everyone tails the group logs.
	p := workload.Default(1234)
	p.NumClients = 12
	p.DailyUsers = 8
	p.OccasionalUsers = 6
	p.SharedReadSoonP = 0.95
	for g := workload.Group(0); g < workload.NumGroups; g++ {
		p.AppMix[g][workload.AppSharedLog] *= 4
	}

	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	c := cluster.New(cfg)
	fmt.Println("running a sharing-heavy community for 4 simulated hours...")
	c.Run(4 * time.Hour)

	recs, err := trace.Collect(trace.Merge(c.PerServerStreams()...))
	if err != nil {
		log.Fatal(err)
	}
	shared := consistency.CollectShared(recs)
	fmt.Printf("%d shared-file events among %d total opens\n\n", len(shared.Events), shared.TotalOpens)

	// --- Table 11: what would NFS-style polling cost? ---
	fmt.Println("Stale-data errors under polling consistency (Table 11):")
	for _, interval := range []time.Duration{60 * time.Second, 3 * time.Second} {
		r := consistency.SimulateStale(shared, interval)
		fmt.Printf("  %3v window: %5.1f errors/hour, %4.1f%% of users affected, %.3f%% of opens hit stale data\n",
			interval, r.ErrorsPerHour, r.PctUsersAffected(), r.PctOpensWithError())
	}
	fmt.Println("  (Sprite eliminates every one of these by construction.)")

	// --- Table 12: is a cleverer mechanism worth it? ---
	o := consistency.SimulateOverhead(shared)
	fmt.Println("\nConsistency overheads on write-shared accesses (Table 12):")
	fmt.Printf("  %-16s %12s %12s\n", "algorithm", "byte ratio", "RPC ratio")
	for a := 0; a < consistency.NumAlgs; a++ {
		fmt.Printf("  %-16s %12.3f %12.3f\n", consistency.AlgNames[a], o.ByteRatio(a), o.RPCRatio(a))
	}
	fmt.Println("\nThe paper's conclusion holds: the mechanisms are comparable, sharing is")
	fmt.Println("rare (~1% of traffic), so pick the simplest one — which Sprite did.")
}
