package core

import (
	"fmt"
	"strings"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/stats"
	"spritefs/internal/workload"
)

// ScaleOptions configures the shard-count sweep.
type ScaleOptions struct {
	// Clients is the total community size across all shards (default
	// 1000, twenty-five times the paper's population).
	Clients int
	// Shards lists the shard counts to sweep (default 1, 2, 4, 8).
	Shards []int
	// Hours of simulated time per configuration (default 0.25).
	Hours float64
	// Seed offsets the base community seed.
	Seed int64
	// Sequential forces the sequential executor even for multi-shard
	// configurations (the default uses the parallel executor, whose
	// output is byte-identical).
	Sequential bool
	// Workers bounds the parallel executor (0 = GOMAXPROCS).
	Workers int
}

// ScaleRow is one shard count's measurement.
type ScaleRow struct {
	Shards int
	Report scale.Report
	Stats  scale.RunStats
}

// ScaleResult is the throughput/saturation sweep: the same community run
// as one big segment and progressively sharded, so the table shows where
// the paper's mechanisms (segment bandwidth, server disks, consistency
// recalls) saturate and how sharding relieves them.
type ScaleResult struct {
	Clients int
	Hours   float64
	Rows    []ScaleRow
}

// RunScaleStudy sweeps shard counts over a fixed community.
func RunScaleStudy(opts ScaleOptions) (*ScaleResult, error) {
	clients := opts.Clients
	if clients <= 0 {
		clients = 1000
	}
	shardCounts := opts.Shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	hours := opts.Hours
	if hours <= 0 {
		hours = 0.25
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 4242
	}
	horizon := time.Duration(hours * float64(time.Hour))

	base := workload.Default(seed)
	factor := float64(clients) / float64(base.NumClients)

	res := &ScaleResult{Clients: clients, Hours: hours}
	for _, n := range shardCounts {
		eng, err := scale.New(scale.Config{Base: base, Factor: factor, Shards: n})
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		st := eng.Run(scale.RunOptions{
			Horizon:  horizon,
			Parallel: !opts.Sequential && n > 1,
			Workers:  opts.Workers,
		})
		res.Rows = append(res.Rows, ScaleRow{Shards: n, Report: eng.Report(), Stats: st})
	}
	return res, nil
}

// ScaleTables renders the sweep: the saturation table (how hot each
// configuration runs the paper's bottlenecks) and the executor table
// (wall-clock per configuration, speedup relative to the first row).
func ScaleTables(r *ScaleResult) string {
	var b strings.Builder

	sat := stats.NewTable(
		fmt.Sprintf("Throughput vs shards: %d clients, %.2fh horizon", r.Clients, r.Hours),
		"shards", "opens/s", "recalls/h", "maxnet%", "maxdisk%", "router%", "remote-ops", "rlat-ms")
	for _, row := range r.Rows {
		rep := row.Report
		var maxNet, maxDisk float64
		var remoteOps int64
		var lat stats.Welford
		for _, s := range rep.PerShard {
			if s.NetUtil > maxNet {
				maxNet = s.NetUtil
			}
			if s.ServerUtil > maxDisk {
				maxDisk = s.ServerUtil
			}
			remoteOps += s.Remote.OpsIssued
			lat.Merge(s.Remote.Latency)
		}
		var latMS float64
		if lat.N() > 0 {
			latMS = lat.Mean() / 1e6
		}
		sat.AddRow(
			fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%.2f", rep.OpensPerSec),
			fmt.Sprintf("%.1f", rep.RecallsPerHour),
			fmt.Sprintf("%.1f", maxNet*100),
			fmt.Sprintf("%.1f", maxDisk*100),
			fmt.Sprintf("%.2f", rep.RouterUtil*100),
			fmt.Sprintf("%d", remoteOps),
			fmt.Sprintf("%.2f", latMS))
	}
	b.WriteString(sat.String())
	b.WriteString("\n")

	exec := stats.NewTable("Executor wall-clock",
		"shards", "workers", "rounds", "null-adv", "msgs", "wall", "speedup")
	base := r.Rows[0].Stats.Wall
	for _, row := range r.Rows {
		speedup := float64(base) / float64(row.Stats.Wall)
		exec.AddRow(
			fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%d", row.Stats.Workers),
			fmt.Sprintf("%d", row.Stats.Exec.Rounds),
			fmt.Sprintf("%d", row.Stats.Exec.NullAdvances),
			fmt.Sprintf("%d", row.Stats.Exec.Routed),
			row.Stats.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", speedup))
	}
	b.WriteString(exec.String())
	b.WriteString("\nWall-clock and speedup are host measurements: shards run on separate\ngoroutines, so multi-shard speedup tracks the host's usable cores\n(GOMAXPROCS); on a single-core host expect ~1x.\n")
	return b.String()
}
