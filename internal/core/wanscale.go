package core

import (
	"fmt"
	"strings"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/stats"
	"spritefs/internal/workload"
)

// WANScaleOptions configures the hierarchical-topology sweep: one fixed
// community spread over a fixed segment count, re-grouped into
// progressively more sites so the sweep isolates what the WAN tier does
// to cache behavior and server load.
type WANScaleOptions struct {
	// Clients is the total community size across all segments (default
	// 10000).
	Clients int
	// Segments is the total Ethernet segment count, constant across the
	// sweep (default 8). Every entry of Sites must divide it.
	Segments int
	// Sites lists the site counts to sweep (default 1, 2, 4, 8; 1 = the
	// flat topology baseline).
	Sites []int
	// Hours of simulated time per configuration (default 0.1).
	Hours float64
	// Seed offsets the base community seed.
	Seed int64
	// Sequential forces the sequential executor (the default uses the
	// parallel executor, whose output is byte-identical).
	Sequential bool
	// Workers bounds the parallel executor (0 = GOMAXPROCS).
	Workers int
	// Lean enables scale.Config.LeanMetrics: per-client metric families
	// are skipped, which is what makes million-client configurations fit
	// in memory. Reports are unaffected (cache ratios come from the
	// client caches directly).
	Lean bool
}

// WANScaleRow is one site count's measurement.
type WANScaleRow struct {
	Sites  int
	Report scale.Report
	Stats  scale.RunStats
}

// WANScaleResult is the tier-depth sweep.
type WANScaleResult struct {
	Clients  int
	Segments int
	Hours    float64
	Rows     []WANScaleRow
}

// RunWANScaleStudy sweeps site counts over a fixed community and segment
// grid. Site count 1 is the flat single-site topology; larger counts
// regroup the same segments under a priced WAN tier, so differences down
// a column are the tier's doing, not the community's.
func RunWANScaleStudy(opts WANScaleOptions) (*WANScaleResult, error) {
	clients := opts.Clients
	if clients <= 0 {
		clients = 10000
	}
	segments := opts.Segments
	if segments <= 0 {
		segments = 8
	}
	siteCounts := opts.Sites
	if len(siteCounts) == 0 {
		siteCounts = []int{1, 2, 4, 8}
	}
	hours := opts.Hours
	if hours <= 0 {
		hours = 0.1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 4242
	}
	horizon := time.Duration(hours * float64(time.Hour))

	base := workload.Default(seed)
	factor := float64(clients) / float64(base.NumClients)

	res := &WANScaleResult{Clients: clients, Segments: segments, Hours: hours}
	for _, sites := range siteCounts {
		if segments%sites != 0 {
			return nil, fmt.Errorf("sites=%d does not divide %d segments", sites, segments)
		}
		eng, err := scale.New(scale.Config{
			Base:        base,
			Factor:      factor,
			Shards:      segments,
			Sites:       sites,
			LeanMetrics: opts.Lean,
		})
		if err != nil {
			return nil, fmt.Errorf("sites=%d: %w", sites, err)
		}
		st := eng.Run(scale.RunOptions{
			Horizon:  horizon,
			Parallel: !opts.Sequential && segments > 1,
			Workers:  opts.Workers,
		})
		res.Rows = append(res.Rows, WANScaleRow{Sites: sites, Report: eng.Report(), Stats: st})
	}
	return res, nil
}

// WANScaleTables renders the sweep: cache hit ratio and server load vs
// tier depth, the WAN tier's traffic share, and the executor's wall-clock
// per configuration.
func WANScaleTables(r *WANScaleResult) string {
	var b strings.Builder

	sat := stats.NewTable(
		fmt.Sprintf("Hierarchy vs flat: %d clients over %d segments, %.2fh horizon",
			r.Clients, r.Segments, r.Hours),
		"sites", "segs/site", "hit%", "opens/s", "maxdisk%", "remote-ops", "xsite-ops",
		"wan%", "rlat-ms", "wanlat-ms")
	for _, row := range r.Rows {
		rep := row.Report
		var maxDisk float64
		var remoteOps int64
		var lat, wanLat stats.Welford
		for _, s := range rep.PerShard {
			if s.ServerUtil > maxDisk {
				maxDisk = s.ServerUtil
			}
			remoteOps += s.Remote.OpsIssued
			lat.Merge(s.Remote.Latency)
			wanLat.Merge(s.Remote.WANLatency)
		}
		var latMS, wanLatMS float64
		if lat.N() > 0 {
			latMS = lat.Mean() / 1e6
		}
		if wanLat.N() > 0 {
			wanLatMS = wanLat.Mean() / 1e6
		}
		sat.AddRow(
			fmt.Sprintf("%d", row.Sites),
			fmt.Sprintf("%d", r.Segments/row.Sites),
			fmt.Sprintf("%.2f", rep.CacheHit*100),
			fmt.Sprintf("%.2f", rep.OpensPerSec),
			fmt.Sprintf("%.1f", maxDisk*100),
			fmt.Sprintf("%d", remoteOps),
			fmt.Sprintf("%d", rep.CrossSiteOps),
			fmt.Sprintf("%.2f", rep.WANUtil*100),
			fmt.Sprintf("%.2f", latMS),
			fmt.Sprintf("%.2f", wanLatMS))
	}
	b.WriteString(sat.String())
	b.WriteString("\n")

	exec := stats.NewTable("Executor wall-clock",
		"sites", "workers", "rounds", "null-adv", "rescues", "msgs", "wall")
	for _, row := range r.Rows {
		exec.AddRow(
			fmt.Sprintf("%d", row.Sites),
			fmt.Sprintf("%d", row.Stats.Workers),
			fmt.Sprintf("%d", row.Stats.Exec.Rounds),
			fmt.Sprintf("%d", row.Stats.Exec.NullAdvances),
			fmt.Sprintf("%d", row.Stats.Exec.Rescues),
			fmt.Sprintf("%d", row.Stats.Exec.Routed),
			row.Stats.Wall.Round(time.Millisecond).String())
	}
	b.WriteString(exec.String())
	b.WriteString("\nWall-clock is a host measurement; everything else is deterministic.\nWAN links are also the executor's widest lookahead, so deeper\nhierarchies usually need fewer synchronization rounds per simulated hour.\n")
	return b.String()
}
