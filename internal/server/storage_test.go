package server

import (
	"testing"
	"time"
)

func TestStorageReadHitMiss(t *testing.T) {
	st := NewStorage(128)
	// Cold read: disk.
	d := st.ServeRead(1, 0, 4096, time.Second)
	if d != st.DiskAccess {
		t.Errorf("cold read disk time = %v", d)
	}
	// Warm read: served from the server cache.
	d = st.ServeRead(1, 0, 4096, 2*time.Second)
	if d != 0 {
		t.Errorf("warm read disk time = %v", d)
	}
	s := st.Stats()
	if s.ReadBlocks != 2 || s.ReadMissBlocks != 1 || s.DiskReads != 1 {
		t.Errorf("stats: %+v", s)
	}
	if got := s.ReadHitPct(); got != 50 {
		t.Errorf("hit pct = %g", got)
	}
}

func TestStorageReadBeyondFileSize(t *testing.T) {
	st := NewStorage(128)
	if d := st.ServeRead(1, 5, 4096, 0); d != 0 {
		t.Errorf("read past EOF cost disk time %v", d)
	}
}

func TestStorageWriteThenCleanReachesDisk(t *testing.T) {
	st := NewStorage(128)
	st.AcceptWrite(1, 0, 4096, 0)
	if busy := st.Clean(10 * time.Second); busy != 0 {
		t.Errorf("clean before the 30s server delay wrote to disk")
	}
	busy := st.Clean(31 * time.Second)
	if busy != st.DiskAccess {
		t.Errorf("clean busy = %v", busy)
	}
	if st.Stats().DiskWrites != 1 {
		t.Errorf("disk writes = %d", st.Stats().DiskWrites)
	}
	// A write that landed in the cache serves subsequent reads.
	if d := st.ServeRead(1, 0, 4096, time.Minute); d != 0 {
		t.Errorf("read of written block went to disk")
	}
}

func TestStorageDropPreventsDiskWrite(t *testing.T) {
	st := NewStorage(128)
	st.AcceptWrite(1, 0, 4096, 0)
	st.Drop(1)
	if busy := st.Clean(time.Minute); busy != 0 {
		t.Errorf("deleted file's dirty block reached the disk")
	}
}

func TestServerStorageIntegration(t *testing.T) {
	s := New(0)
	s.AttachStorage(128)
	f := s.Create(false, 0)
	s.Grow(f.ID, 8192, 0)

	// Writeback populates the server cache.
	s.WriteBack(f.ID, 1, 0, 4096, time.Second)
	if d := s.ServeBlock(f.ID, 0, 2*time.Second); d != 0 {
		t.Errorf("cached block cost disk time %v", d)
	}
	// The other block is cold.
	if d := s.ServeBlock(f.ID, 1, 3*time.Second); d == 0 {
		t.Error("cold block cost no disk time")
	}
	// Span helpers.
	s.AcceptSpan(f.ID, 0, 8192, 4*time.Second)
	if d := s.ServeSpan(f.ID, 0, 8192, 5*time.Second); d != 0 {
		t.Errorf("span after write cost disk time %v", d)
	}
	// Unknown files and detached storage are safe no-ops.
	if d := s.ServeBlock(999, 0, 0); d != 0 {
		t.Error("unknown file cost disk time")
	}
	bare := New(1)
	if d := bare.ServeBlock(f.ID, 0, 0); d != 0 {
		t.Error("storage-less server cost disk time")
	}
	bare.AcceptSpan(f.ID, 0, 100, 0)
	bare.WriteBack(f.ID, 1, 0, 100, 0)
}

func TestStorageEvictionUnderPressure(t *testing.T) {
	st := NewStorage(4) // tiny server cache
	for b := int64(0); b < 16; b++ {
		st.ServeRead(1, b, 16*4096, time.Duration(b)*time.Second)
	}
	// All cold: every read hit the disk.
	if s := st.Stats(); s.DiskReads != 16 {
		t.Errorf("disk reads = %d", s.DiskReads)
	}
	if st.CacheBlocks() > 4 {
		t.Errorf("server cache over capacity: %d", st.CacheBlocks())
	}
}
