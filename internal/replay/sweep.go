// Sweep driver: replay one trace under many configurations in parallel.
//
// The paper's Section 5 methodology was exactly this — hold the trace
// fixed and vary the cache/consistency parameters, so every configuration
// sees the identical reference string. Each configuration gets a hermetic
// engine (its own simulator, network, servers and clients) over the shared
// read-only record slice, so worker scheduling cannot leak between
// replays: the aggregate report is byte-identical for any worker count,
// which TestSweepWorkerCountInvariance pins down.
package replay

import (
	"fmt"
	"sync"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/netsim"
	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

// RunSweep replays recs once per configuration, fanning the configurations
// out over the given number of worker goroutines (min 1). Results are
// indexed by configuration — independent of completion order — and any
// replay error is reported with its configuration's name.
func RunSweep(recs []trace.Record, cfgs []Config, workers int) ([]*Result, error) {
	return RunSweepWith(recs, cfgs, workers, nil)
}

// RunSweepWith is RunSweep with a completion hook: onResult (when non-nil)
// is called from the worker goroutine as each configuration finishes, with
// the configuration index and its result. cmd/replay uses it to flush
// completed configurations' metrics if the sweep is interrupted mid-run;
// the hook must be safe for concurrent calls.
func RunSweepWith(recs []trace.Record, cfgs []Config, workers int, onResult func(int, *Result)) ([]*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(cfgs[i], trace.NewSliceStream(recs))
				if onResult != nil && errs[i] == nil {
					onResult(i, results[i])
				}
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("replay %q: %w", cfgs[i].Name, err)
		}
	}
	return results, nil
}

// SweepTable summarizes a sweep one row per configuration: the Section 5
// cache-effectiveness ratios (read misses, miss traffic, writebacks) and
// the Table 10 consistency-action rates, side by side so a parameter's
// effect reads across a single column.
func SweepTable(results []*Result) *stats.Table {
	t := stats.NewTable("Trace replay sweep",
		"config", "records", "opens", "miss%", "traffic%", "wb%", "netMB", "cws%", "recall%")
	for i, r := range results {
		name := r.Config.Name
		if name == "" {
			name = fmt.Sprintf("cfg%d", i)
		}
		t6 := r.Report.Table6
		t10 := r.Report.Table10
		t.AddRow(name,
			fmt.Sprintf("%d", r.Stats.Applied),
			fmt.Sprintf("%d", t10.FileOpens),
			fmt.Sprintf("%.1f", t6.All.ReadMissPct),
			fmt.Sprintf("%.1f", t6.All.ReadMissTrafficPct),
			fmt.Sprintf("%.1f", t6.All.WritebackPct),
			fmt.Sprintf("%.1f", float64(r.Report.Table7.TotalBytes)/(1<<20)),
			fmt.Sprintf("%.2f", t10.CWSPct),
			fmt.Sprintf("%.2f", t10.RecallPct))
	}
	return t
}

// ReplayTable summarizes a single replay's bookkeeping: what the engine
// did with the stream, before the full report tables.
func ReplayTable(r *Result) *stats.Table {
	t := stats.NewTable("Trace replay", "counter", "value")
	row := func(k string, v int64) { t.AddRow(k, fmt.Sprintf("%d", v)) }
	row("records read", r.Stats.Read)
	row("applied", r.Stats.Applied)
	row("filtered", r.Stats.Filtered)
	row("scrubbed", r.Stats.Scrubbed)
	row("unknown handle", r.Stats.UnknownHandle)
	row("errors", r.Stats.Errors)
	row("files bootstrapped", r.Stats.Bootstrapped)
	row("creates", r.Stats.Creates)
	row("migrations", r.Stats.Migrations)
	t.AddRow("trace horizon", fmt.Sprintf("%v", r.Horizon.Round(time.Millisecond)))
	t.AddRow("virtual end", fmt.Sprintf("%v", r.End.Round(time.Millisecond)))
	if !r.Config.Faults.Empty() {
		rec := r.Report.Recovery
		row("server crashes", rec.ServerCrashes)
		row("client crashes", rec.ClientCrashes)
		row("opens lost in crash", rec.OpensLostInCrash)
		row("dirty bytes lost", rec.DirtyBytesLost)
		t.AddRow("max dirty age lost", fmt.Sprintf("%v", rec.MaxDirtyAge.Round(time.Millisecond)))
		row("recoveries", rec.Recoveries)
		row("recovery reopens", rec.RecoveryOpens)
		row("recovery replayed bytes", rec.ReplayedBytes)
		row("recovery retries", rec.RecoveryRetries)
		row("recovery gave up", rec.GaveUp)
		row("max reopen storm", int64(r.Faults.MaxReopenStorm))
		t.AddRow("time to reconsistency", fmt.Sprintf("%v", rec.MaxTimeToReconsistency.Round(time.Millisecond)))
		row("rpcs dropped", rec.DroppedOps)
		row("rpcs stalled", rec.StalledOps)
		t.AddRow("stall time", fmt.Sprintf("%v", rec.StallTime.Round(time.Millisecond)))
	}
	return t
}

// ReportTables renders the replayed run's counter tables — the same
// quantities a live cluster reports, numbered as in the paper.
func ReportTables(rep *cluster.Report) []*stats.Table {
	t6 := stats.NewTable("Table 6: client cache effectiveness", "measure", "all", "migrated")
	t6.AddRowf("read miss %", "%.1f", rep.Table6.All.ReadMissPct, rep.Table6.Migrated.ReadMissPct)
	t6.AddRowf("read miss traffic %", "%.1f", rep.Table6.All.ReadMissTrafficPct, rep.Table6.Migrated.ReadMissTrafficPct)
	t6.AddRowf("writeback %", "%.1f", rep.Table6.All.WritebackPct)
	t6.AddRowf("write fetch %", "%.1f", rep.Table6.All.WriteFetchPct, rep.Table6.Migrated.WriteFetchPct)
	t6.AddRowf("bytes saved by delete %", "%.1f", rep.Table6.BytesSavedByDeletePct)

	t7 := stats.NewTable("Table 7: network traffic", "class", "% of bytes")
	for c := netsim.Class(0); c < netsim.NumClasses; c++ {
		t7.AddRowf(c.String(), "%.1f", rep.Table7.ClassPct[c])
	}
	t7.AddRowf("read share", "%.1f", rep.Table7.ReadPct)
	t7.AddRowf("read:write ratio", "%.2f", rep.Table7.ReadWriteRatio)
	t7.AddRow("total", stats.FmtBytes(rep.Table7.TotalBytes))

	t8 := stats.NewTable("Table 8: cache block replacement", "measure", "value")
	t8.AddRowf("replaced for file data %", "%.1f", rep.Table8.FilePct)
	t8.AddRowf("handed to VM %", "%.1f", rep.Table8.VMPct)
	t8.AddRowf("avg age at replacement (min)", "%.1f", rep.Table8.AvgAgeMin)

	t10 := stats.NewTable("Table 10: consistency actions", "measure", "value")
	t10.AddRow("file opens", fmt.Sprintf("%d", rep.Table10.FileOpens))
	t10.AddRowf("concurrent write-sharing %", "%.2f", rep.Table10.CWSPct)
	t10.AddRowf("recalls %", "%.2f", rep.Table10.RecallPct)

	return []*stats.Table{t6, t7, t8, t10}
}
