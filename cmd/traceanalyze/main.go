// Command traceanalyze merges per-server trace files (written by
// cmd/tracegen) and runs the Section 4 analyses over them: overall
// statistics (Table 1), user activity (Table 2), access patterns
// (Table 3), the run-length / size / open-time / lifetime distributions
// (Figures 1-4), the trace-derived consistency actions (Table 10), and
// optionally the Section 5.5-5.6 consistency simulations (Tables 11-12).
//
// Usage:
//
//	traceanalyze trace1.srv0 trace1.srv1 trace1.srv2 trace1.srv3
//	traceanalyze -exclude-users 3,7 -consistency trace1.srv*
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/consistency"
	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

func main() {
	var (
		exclude = flag.String("exclude-users", "", "comma-separated user ids to drop (paper §4.2's kernel-group check)")
		doCons  = flag.Bool("consistency", false, "also run the Table 11/12 consistency simulations")
		cdf     = flag.Bool("cdf", false, "print full CDFs for Figures 1-4 (tab-separated)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceanalyze [flags] tracefile...")
		os.Exit(2)
	}
	if err := run(flag.Args(), *exclude, *doCons, *cdf); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

func run(paths []string, exclude string, doCons, cdf bool) error {
	var streams []trace.Stream
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		streams = append(streams, r)
	}
	var merged trace.Stream = trace.Merge(streams...)
	if exclude != "" {
		var users []int32
		for _, part := range strings.Split(exclude, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad user id %q", part)
			}
			users = append(users, int32(n))
		}
		merged = trace.ExcludeUsers(merged, users...)
	}

	ov := analysis.NewOverall()
	ua := analysis.NewUserActivity()
	ap := analysis.NewAccessPatterns()
	lt := analysis.NewLifetimes()
	ca := analysis.NewConsistencyActions()
	var recs []trace.Record
	sinks := []analysis.Sink{ov, ua, ap, lt, ca}
	if doCons {
		// The consistency simulators need the records in memory.
		collected, err := trace.Collect(merged)
		if err != nil {
			return err
		}
		recs = collected
		merged = trace.NewSliceStream(recs)
	}
	if err := analysis.Run(merged, sinks...); err != nil {
		return err
	}

	printOverall(ov)
	printActivity(ua)
	printAccess(ap)
	printFigures(ap, lt, cdf)
	printActions(ca)

	if doCons {
		shared := consistency.CollectShared(recs)
		printStale(consistency.SimulateStale(shared, 60*time.Second))
		printStale(consistency.SimulateStale(shared, 3*time.Second))
		printOverhead(consistency.SimulateOverhead(shared))
	}
	return nil
}

func printOverall(o *analysis.Overall) {
	t := stats.NewTable("Overall statistics (Table 1)", "Metric", "Value")
	t.AddRow("duration", o.Duration.Truncate(time.Second).String())
	t.AddRow("users", fmt.Sprint(o.Users))
	t.AddRow("migration users", fmt.Sprint(o.MigrationUsers))
	t.AddRowf("MB read from files", "%.1f", o.MBReadFiles)
	t.AddRowf("MB written to files", "%.1f", o.MBWrittenFiles)
	t.AddRowf("MB read from dirs", "%.1f", o.MBReadDirs)
	t.AddRow("opens", fmt.Sprint(o.Opens))
	t.AddRow("closes", fmt.Sprint(o.Closes))
	t.AddRow("repositions", fmt.Sprint(o.Repositions))
	t.AddRow("deletes", fmt.Sprint(o.Deletes))
	t.AddRow("truncates", fmt.Sprint(o.Truncates))
	t.AddRow("shared reads", fmt.Sprint(o.SharedReads))
	t.AddRow("shared writes", fmt.Sprint(o.SharedWrites))
	fmt.Println(t)
}

func printActivity(u *analysis.UserActivity) {
	t := stats.NewTable("User activity (Table 2)", "Metric", "10-min", "10-min mig", "10-sec", "10-sec mig")
	row := func(label string, f func(*analysis.ActivityRow) float64) {
		t.AddRow(label,
			fmt.Sprintf("%.2f", f(&u.TenMinAll)), fmt.Sprintf("%.2f", f(&u.TenMinMigrated)),
			fmt.Sprintf("%.2f", f(&u.TenSecAll)), fmt.Sprintf("%.2f", f(&u.TenSecMigrated)))
	}
	row("avg active users", func(r *analysis.ActivityRow) float64 { return r.AvgActiveUsers })
	row("max active users", func(r *analysis.ActivityRow) float64 { return float64(r.MaxActiveUsers) })
	row("avg throughput (KB/s)", func(r *analysis.ActivityRow) float64 { return r.AvgThroughputKBs })
	row("sd throughput (KB/s)", func(r *analysis.ActivityRow) float64 { return r.SDThroughputKBs })
	row("peak user (KB/s)", func(r *analysis.ActivityRow) float64 { return r.PeakUserKBs })
	row("peak total (KB/s)", func(r *analysis.ActivityRow) float64 { return r.PeakTotalKBs })
	fmt.Println(t)
}

func printAccess(a *analysis.AccessPatterns) {
	t := stats.NewTable("Access patterns (Table 3)", "Class", "Acc %", "Bytes %",
		"whole/seq/random (acc %)", "whole/seq/random (bytes %)")
	for class := 0; class < analysis.NumClasses; class++ {
		acc, bytes := a.ClassPct(class)
		var accs, byts [analysis.NumSeqs]float64
		for seq := 0; seq < analysis.NumSeqs; seq++ {
			accs[seq], byts[seq] = a.SeqPct(class, seq)
		}
		t.AddRow(analysis.ClassNames[class],
			fmt.Sprintf("%.1f", acc), fmt.Sprintf("%.1f", bytes),
			fmt.Sprintf("%.0f/%.0f/%.0f", accs[0], accs[1], accs[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", byts[0], byts[1], byts[2]))
	}
	fmt.Println(t)
}

func printFigures(a *analysis.AccessPatterns, l *analysis.Lifetimes, full bool) {
	t := stats.NewTable("Distribution checkpoints (Figures 1-4)", "Metric", "Value")
	t.AddRowf("runs <= 10KB (% by runs)", "%.1f", 100*a.RunsByCount.FracAtOrBelow(10*1024))
	t.AddRowf("bytes in runs > 1MB (%)", "%.1f", 100*(1-a.RunsByBytes.FracAtOrBelow(1<<20)))
	t.AddRowf("accesses to files <= 10KB (%)", "%.1f", 100*a.SizeByFiles.FracAtOrBelow(10*1024))
	t.AddRowf("bytes from files >= 1MB (%)", "%.1f", 100*(1-a.SizeByBytes.FracAtOrBelow(1<<20)))
	t.AddRowf("opens <= 0.25s (%)", "%.1f", 100*a.OpenTimes.FracAtOrBelow(0.25))
	t.AddRowf("files living < 30s (%)", "%.1f", l.PctFilesUnder30s())
	t.AddRowf("bytes living < 30s (%)", "%.1f", l.PctBytesUnder30s())
	fmt.Println(t)
	if full {
		dumpCDF("fig1.runs", a.RunsByCount)
		dumpCDF("fig1.bytes", a.RunsByBytes)
		dumpCDF("fig2.files", a.SizeByFiles)
		dumpCDF("fig2.bytes", a.SizeByBytes)
		dumpCDF("fig3.opentimes", a.OpenTimes)
		dumpCDF("fig4.files", l.ByFiles)
		dumpCDF("fig4.bytes", l.ByBytes)
	}
}

func dumpCDF(name string, h *stats.Hist) {
	for _, p := range h.CDF() {
		fmt.Printf("%s\t%g\t%.4f\n", name, p.X, p.Frac)
	}
}

func printActions(c *analysis.ConsistencyActions) {
	t := stats.NewTable("Consistency actions (Table 10)", "Action", "% of opens")
	t.AddRowf("concurrent write-sharing", "%.2f", c.PctCWS())
	t.AddRowf("server recall", "%.2f", c.PctRecalls())
	fmt.Println(t)
}

func printStale(r consistency.StaleResult) {
	t := stats.NewTable(fmt.Sprintf("Stale-data simulation, %v interval (Table 11)", r.Interval), "Metric", "Value")
	t.AddRow("errors", fmt.Sprint(r.Errors))
	t.AddRowf("errors/hour", "%.2f", r.ErrorsPerHour)
	t.AddRowf("users affected (%)", "%.1f", r.PctUsersAffected())
	t.AddRowf("opens with error (%)", "%.3f", r.PctOpensWithError())
	t.AddRowf("migrated opens with error (%)", "%.3f", r.PctMigratedOpensWithError())
	fmt.Println(t)
}

func printOverhead(o consistency.Overhead) {
	t := stats.NewTable("Consistency overheads (Table 12)", "Algorithm", "Byte ratio", "RPC ratio")
	for a := 0; a < consistency.NumAlgs; a++ {
		t.AddRow(consistency.AlgNames[a],
			fmt.Sprintf("%.3f", o.ByteRatio(a)), fmt.Sprintf("%.3f", o.RPCRatio(a)))
	}
	fmt.Println(t)
}
