package traceio

import (
	"strings"
	"testing"
	"time"

	"spritefs/internal/trace"
)

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("size=8,rate=4,clients=3,files=2,skew=7ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{SizeScale: 8, RateScale: 4, ClientScale: 3, FileScale: 2, CloneSkew: 7 * time.Millisecond}
	if p != want {
		t.Fatalf("got %+v, want %+v", p, want)
	}
	id, err := ParseProfile("")
	if err != nil {
		t.Fatal(err)
	}
	if id != (Profile{SizeScale: 1, RateScale: 1, ClientScale: 1, FileScale: 1, CloneSkew: 5 * time.Millisecond}) {
		t.Fatalf("empty spec is not identity: %+v", id)
	}
	if _, err := ParseProfile("warp=9"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestModernizeScales(t *testing.T) {
	recs, _ := importSample(t)
	out, rep := Modernize(recs, Profile{SizeScale: 10, RateScale: 2, ClientScale: 3})
	if rep.Records[1] != 3*rep.Records[0] {
		t.Fatalf("records %d -> %d, want ×3", rep.Records[0], rep.Records[1])
	}
	if rep.Clients[1] != 3*rep.Clients[0] {
		t.Fatalf("clients %d -> %d, want ×3", rep.Clients[0], rep.Clients[1])
	}
	if rep.Files[1] != 3*rep.Files[0] {
		t.Fatalf("files %d -> %d, want ×3", rep.Files[0], rep.Files[1])
	}
	if rep.Bytes[1] != 3*10*rep.Bytes[0] {
		t.Fatalf("payload %d -> %d, want ×30", rep.Bytes[0], rep.Bytes[1])
	}
	// Rate ×2 halves the base duration; the last clone's skew shifts the
	// end slightly.
	if rep.Duration[1] >= rep.Duration[0] {
		t.Fatalf("duration %s -> %s, want compressed", rep.Duration[0], rep.Duration[1])
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatal("modernized stream not time-sorted")
		}
	}
	// Clones must not share handles or files.
	seenHandle := map[uint64]int32{}
	for _, r := range out {
		if r.Kind != trace.KindOpen || r.Handle == 0 {
			continue
		}
		if c, ok := seenHandle[r.Handle]; ok && c != r.Client {
			t.Fatalf("handle %d reused across clients %d and %d", r.Handle, c, r.Client)
		}
		seenHandle[r.Handle] = r.Client
	}
	if rep.String() == "" || !strings.Contains(rep.String(), "clients") {
		t.Error("report render empty")
	}
}

func TestModernizeFileScaleSplitsSessions(t *testing.T) {
	// Four sessions on one file; FileScale 2 must spread them over two
	// distinct file IDs, alternating.
	var recs []trace.Record
	for s := 0; s < 4; s++ {
		h := uint64(s + 1)
		base := time.Duration(s) * time.Second
		recs = append(recs,
			trace.Record{Time: base, Kind: trace.KindOpen, Client: 1, File: 0x42, Handle: h, Flags: trace.FlagReadMode},
			trace.Record{Time: base + time.Millisecond, Kind: trace.KindRead, Client: 1, File: 0x42, Handle: h, Length: 100},
			trace.Record{Time: base + 2*time.Millisecond, Kind: trace.KindClose, Client: 1, File: 0x42, Handle: h},
		)
	}
	out, rep := Modernize(recs, Profile{FileScale: 2})
	if rep.Files[1] != 2 {
		t.Fatalf("files %d -> %d, want 2", rep.Files[0], rep.Files[1])
	}
	// Within one session every record must stay on one file copy.
	byHandle := map[uint64]uint64{}
	for _, r := range out {
		if r.Handle == 0 {
			continue
		}
		if f, ok := byHandle[r.Handle]; ok && f != r.File {
			t.Fatalf("session handle %d touches files %x and %x", r.Handle, f, r.File)
		}
		byHandle[r.Handle] = r.File
	}
}

func TestModernizeIdentity(t *testing.T) {
	recs, _ := importSample(t)
	out, rep := Modernize(recs, Profile{})
	if len(out) != len(recs) {
		t.Fatalf("identity profile changed record count %d -> %d", len(recs), len(out))
	}
	for i := range recs {
		if out[i] != recs[i] {
			t.Fatalf("identity profile changed record %d:\n%v\n%v", i, recs[i], out[i])
		}
	}
	if rep.Records[0] != rep.Records[1] {
		t.Fatal("identity report disagrees with itself")
	}
}

func TestModernizeDeterministic(t *testing.T) {
	recs, _ := importSample(t)
	p := Profile{SizeScale: 4, RateScale: 2, ClientScale: 4, FileScale: 2}
	a, _ := Modernize(recs, p)
	b, _ := Modernize(recs, p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical modernize runs", i)
		}
	}
}
