package scale

import (
	"fmt"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/netsim"
	"spritefs/internal/sim"
	"spritefs/internal/workload"
)

// RouterConfig parameterizes the inter-segment backbone. Latency is the
// one-way store-and-forward delay a cross-shard message pays; it is also
// the channel-clock executor's per-link lookahead, so a smaller latency
// means tighter coupling and more synchronization rounds per simulated
// second.
type RouterConfig struct {
	// Latency is the uniform one-way inter-segment delay, used for every
	// link LinkLatency does not override. Must be positive: it is the
	// default lookahead floor the executor parallelizes over.
	Latency time.Duration
	// BandwidthBps is the backbone bandwidth in bytes/second shared by
	// all links (payload bytes add Payload/Bandwidth to the delay).
	BandwidthBps float64
	// LinkLatency, when set, prices each directed link separately (a
	// tiered WAN: cheap intra-site hops, expensive cross-site trunks).
	// It is consulted once per ordered shard pair at construction and
	// must be deterministic. Individual links may be zero-latency — the
	// executor falls back to serialized stall-breaking rounds on links
	// with no lookahead — but must not be negative.
	LinkLatency func(from, to int) time.Duration
}

// DefaultRouter returns a campus-backbone router: 100 Mbit/s trunk and
// 2 ms store-and-forward latency — an order of magnitude faster than the
// measured segments, as the successor systems' backbones were.
func DefaultRouter() RouterConfig {
	return RouterConfig{Latency: 2 * time.Millisecond, BandwidthBps: 12.5e6}
}

// RemoteConfig shapes the cross-segment traffic: how often a client
// reaches across the router, and for what.
type RemoteConfig struct {
	// OpsPerClientHour is the mean number of cross-segment operations one
	// client issues per hour. Zero disables remote traffic (shards run
	// fully decoupled; the executor still barriers but exchanges nothing).
	OpsPerClientHour float64
	// ReadFrac is the fraction of remote operations that are reads of a
	// remote shard's shared artifacts; the rest are writes (remote log
	// appends, result drops).
	ReadFrac float64
	// BytesMedian/BytesSigma give the log-normal size of a remote
	// operation's payload.
	BytesMedian float64
	BytesSigma  float64
}

// DefaultRemote returns the cross-segment mix the scale study uses: a
// handful of remote ops per client-hour (the paper's users touched other
// groups' files rarely but measurably), read-mostly, with small-file
// sized payloads.
func DefaultRemote() RemoteConfig {
	return RemoteConfig{
		OpsPerClientHour: 6,
		ReadFrac:         0.8,
		BytesMedian:      8 * 1024,
		BytesSigma:       1.0,
	}
}

// Config declares a sharded cluster. The zero value is not runnable; at
// minimum Base and Shards must be set. New applies defaults to the rest.
type Config struct {
	// Base is the single-segment community the topology multiplies and
	// shards (usually workload.Default(seed)).
	Base workload.Params
	// Factor scales the community to Factor× the paper's population
	// before sharding (1000 clients = Factor 25). <= 0 means 1.
	Factor float64
	// Shards is the number of Ethernet segments. Each segment gets its
	// own netsim instance, server group and community slice.
	Shards int
	// ServersPerShard sizes each shard's server group (0 = the paper's 4).
	ServersPerShard int
	// Segment overrides each segment's wire parameters (zero keeps the
	// measured 10 Mbit/s Ethernet).
	Segment netsim.Config
	// Router is the inter-segment backbone (zero = DefaultRouter).
	Router RouterConfig
	// Remote is the cross-segment traffic mix (zero = DefaultRemote; set
	// Remote.OpsPerClientHour < 0 to disable remote traffic entirely).
	Remote RemoteConfig
	// Tune, when set, adjusts each shard's cluster configuration after
	// the defaults are applied (ablations on a sharded world).
	Tune func(shard int, cfg *cluster.Config)
	// SeedMessages pre-populates the shards' message free lists, entry i
	// going to shard i. Benchmarks drain a finished engine's pools with
	// DrainMessagePools and seed the next iteration's engine so allocs/op
	// reflects the executor's steady state rather than cold-start pool
	// growth. Message contents are fully overwritten before use, so
	// seeding never changes simulation output.
	SeedMessages [][]*Message
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Factor <= 0 {
		c.Factor = 1
	}
	if c.ServersPerShard <= 0 {
		c.ServersPerShard = 4
	}
	if c.Router.Latency <= 0 && c.Router.BandwidthBps == 0 {
		c.Router = DefaultRouter()
	}
	if c.Remote == (RemoteConfig{}) {
		c.Remote = DefaultRemote()
	}
	if c.Remote.OpsPerClientHour < 0 {
		c.Remote.OpsPerClientHour = 0
	}
	return c
}

// validate rejects configurations the executor cannot run correctly.
func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("scale: need at least one shard (got %d)", c.Shards)
	}
	if c.Router.Latency <= 0 {
		return fmt.Errorf("scale: router latency must be positive (it is the executor's default lookahead)")
	}
	if c.Router.BandwidthBps <= 0 {
		return fmt.Errorf("scale: router bandwidth must be positive")
	}
	if c.Router.LinkLatency != nil {
		for i := 0; i < c.Shards; i++ {
			for j := 0; j < c.Shards; j++ {
				if i == j {
					continue
				}
				if l := c.Router.LinkLatency(i, j); l < 0 {
					return fmt.Errorf("scale: link %d->%d latency %v is negative", i, j, l)
				}
			}
		}
	}
	total := workload.ScaleCommunity(c.Base, c.Factor)
	if total.NumClients < c.Shards {
		return fmt.Errorf("scale: %d clients cannot populate %d shards", total.NumClients, c.Shards)
	}
	return nil
}

// PlacedFile is one entry of the static placement map: a file homed on a
// specific server of a specific shard, visible across segments.
type PlacedFile struct {
	Shard  int
	Server int16
	File   uint64
	Size   int64
}

// Placement is the static file→(shard, server) map of cross-segment
// visible files. It is built once after bootstrap, before the executor
// starts, and never mutated — shards read it concurrently without
// synchronization.
type Placement struct {
	byShard [][]PlacedFile
	total   int
}

// buildPlacement snapshots each shard's remotely visible artifacts: the
// system binaries everyone execs, the kernel images, and the group shared
// files — the file classes the paper's community actually shared across
// group boundaries. Entries keep bootstrap order, which is deterministic.
func buildPlacement(shards []*Shard) *Placement {
	p := &Placement{byShard: make([][]PlacedFile, len(shards))}
	for i, sh := range shards {
		reg := sh.C.Registry
		var files []uint64
		for _, b := range reg.Binaries {
			files = append(files, b.File)
		}
		files = append(files, reg.KernelImages...)
		for g := workload.Group(0); g < workload.NumGroups; g++ {
			files = append(files, reg.GroupShared[g]...)
		}
		placed := make([]PlacedFile, 0, len(files))
		for _, f := range files {
			srvIdx := int(f >> 48)
			if srvIdx >= len(sh.C.Servers) {
				srvIdx = 0
			}
			srv := sh.C.Servers[srvIdx]
			var size int64
			if fl := srv.Lookup(f); fl != nil {
				size = fl.Size
			}
			placed = append(placed, PlacedFile{Shard: i, Server: int16(srvIdx), File: f, Size: size})
		}
		p.byShard[i] = placed
		p.total += len(placed)
	}
	return p
}

// Len returns the number of placed files across all shards.
func (p *Placement) Len() int { return p.total }

// ShardFiles returns shard i's placed files (read-only).
func (p *Placement) ShardFiles(i int) []PlacedFile { return p.byShard[i] }

// PickRemote draws a placed file homed on any shard but `from`, uniform
// over shards then over that shard's files. ok is false when no other
// shard has placed files.
func (p *Placement) PickRemote(rng *sim.Rand, from int) (PlacedFile, bool) {
	n := len(p.byShard)
	if n < 2 {
		return PlacedFile{}, false
	}
	// Up to n tries to find a non-empty remote shard; placement is built
	// from bootstrap artifacts, so empty shards are pathological.
	for try := 0; try < n; try++ {
		to := rng.Intn(n - 1)
		if to >= from {
			to++
		}
		files := p.byShard[to]
		if len(files) == 0 {
			continue
		}
		return files[rng.Intn(len(files))], true
	}
	return PlacedFile{}, false
}
