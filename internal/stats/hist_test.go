package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistPanicsOnBadBounds(t *testing.T) {
	cases := []struct {
		lo, hi float64
		per    int
	}{
		{0, 10, 4}, {-1, 10, 4}, {10, 10, 4}, {10, 5, 4}, {1, 10, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHist(%g,%g,%d) did not panic", c.lo, c.hi, c.per)
				}
			}()
			NewHist(c.lo, c.hi, c.per)
		}()
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist(1, 1e6, 4)
	if h.Total() != 0 || h.N() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	if cdf := h.CDF(); len(cdf) != 0 {
		t.Errorf("empty histogram CDF has %d points", len(cdf))
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", q)
	}
	if f := h.FracAtOrBelow(10); f != 0 {
		t.Errorf("empty histogram FracAtOrBelow = %g, want 0", f)
	}
}

func TestHistIgnoresNonPositiveWeight(t *testing.T) {
	h := NewHist(1, 1e3, 4)
	h.Add(10, 0)
	h.Add(10, -5)
	if h.Total() != 0 {
		t.Errorf("non-positive weights were recorded: total=%g", h.Total())
	}
}

func TestHistCDFMonotoneAndEndsAtOne(t *testing.T) {
	h := NewHist(1, 1e6, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		h.Add(math.Pow(10, rng.Float64()*7-0.5), rng.Float64()*10+0.1)
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prevX, prevF := 0.0, 0.0
	for _, p := range cdf {
		if p.X < prevX {
			t.Fatalf("CDF X not monotone: %g after %g", p.X, prevX)
		}
		if p.Frac < prevF-1e-12 {
			t.Fatalf("CDF Frac not monotone: %g after %g", p.Frac, prevF)
		}
		prevX, prevF = p.X, p.Frac
	}
	if last := cdf[len(cdf)-1].Frac; math.Abs(last-1) > 1e-9 {
		t.Errorf("CDF does not end at 1: %g", last)
	}
}

func TestHistUnderOverflow(t *testing.T) {
	h := NewHist(10, 1000, 4)
	h.Add1(1)    // underflow
	h.Add1(5000) // overflow
	h.Add1(100)
	if got := h.FracAtOrBelow(9); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("underflow fraction = %g, want 1/3", got)
	}
	if got := h.FracAtOrBelow(2000); math.Abs(got-1) > 1e-9 {
		t.Errorf("fraction at overflow = %g, want 1", got)
	}
}

// Property: Hist quantiles agree with ExactCDF quantiles to within one
// bucket's relative width.
func TestHistQuantileMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHist(1, 1e6, 16)
		var e ExactCDF
		for i := 0; i < 500; i++ {
			v := math.Pow(10, rng.Float64()*5.5)
			w := rng.Float64() + 0.01
			h.Add(v, w)
			e.Add(v, w)
		}
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			hq := h.Quantile(p)
			eq := e.Quantile(p)
			// One bucket is a factor of 10^(1/16) ~ 1.155; allow two.
			if hq < eq/1.34 || hq > eq*1.34 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: FracAtOrBelow is consistent with Quantile (approximate inverse).
func TestHistFracQuantileInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHist(1, 1e6, 8)
		for i := 0; i < 200; i++ {
			h.Add1(math.Pow(10, rng.Float64()*5.9))
		}
		for _, p := range []float64{0.2, 0.5, 0.8} {
			q := h.Quantile(p)
			if h.FracAtOrBelow(q) < p-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist(1, 1e4, 4)
	b := NewHist(1, 1e4, 4)
	all := NewHist(1, 1e4, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		v := math.Pow(10, rng.Float64()*4)
		if i%2 == 0 {
			a.Add1(v)
		} else {
			b.Add1(v)
		}
		all.Add1(v)
	}
	a.Merge(b)
	if a.Total() != all.Total() {
		t.Errorf("merged total %g != %g", a.Total(), all.Total())
	}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("quantile %g mismatch after merge", p)
		}
	}
}

func TestHistMergeGeometryPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging incompatible histograms did not panic")
		}
	}()
	NewHist(1, 1e4, 4).Merge(NewHist(1, 1e5, 4))
}

func TestExactCDFQuantile(t *testing.T) {
	var e ExactCDF
	for _, v := range []float64{1, 2, 3, 4} {
		e.Add(v, 1)
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("median = %g, want 2", q)
	}
	if q := e.Quantile(1.0); q != 4 {
		t.Errorf("p100 = %g, want 4", q)
	}
	if f := e.FracAtOrBelow(2.5); f != 0.5 {
		t.Errorf("FracAtOrBelow(2.5) = %g, want 0.5", f)
	}
}

func TestExactCDFByteWeighted(t *testing.T) {
	// One 1 KB file and one 1 MB file: by files the median is small, by
	// bytes nearly all weight is in the large file — the Figure 2 effect.
	var byFiles, byBytes ExactCDF
	for _, sz := range []float64{1024, 1 << 20} {
		byFiles.Add(sz, 1)
		byBytes.Add(sz, sz)
	}
	if f := byFiles.FracAtOrBelow(2048); f != 0.5 {
		t.Errorf("by-files frac = %g, want 0.5", f)
	}
	if f := byBytes.FracAtOrBelow(2048); f > 0.01 {
		t.Errorf("by-bytes frac = %g, want ~0.001", f)
	}
}
