package sim

// Clock is the scheduling seam between the virtual-time simulator and the
// live wall-clock frontend. Code written against Clock — periodic daemons,
// deadline timers, retry backoff — runs unchanged under both *Sim (virtual
// time, single-threaded, deterministic) and internal/live.WallClock (real
// time, paced by a dispatcher goroutine against the monotonic clock).
//
// The interface deliberately covers only scheduling. Driver-side methods
// (Step, Run, RunUntil, NextAt) stay on *Sim: who advances time is exactly
// what distinguishes the two implementations. Randomness also stays with
// *Sim — a deterministic stream makes no sense on a clock whose event
// times come from the operating system.
type Clock interface {
	// Now returns the current time as a duration from the clock's start.
	Now() Time
	// At schedules fn at absolute time t (clamped to now if already past
	// on a wall clock; a programming-error panic on the simulator).
	At(t Time, fn func())
	// After schedules fn d after the current time; negative d is clamped.
	After(d Time, fn func())
	// Every schedules fn at start and then every period thereafter until
	// the returned Ticker is stopped.
	Every(start, period Time, fn func()) *Ticker
}

// The simulator is the reference Clock implementation.
var _ Clock = (*Sim)(nil)
