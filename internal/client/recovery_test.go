package client

import (
	"testing"
	"time"
)

// crashRestart crashes and immediately restarts the rig's server, the way
// the fault injector does (the outage itself is modeled as RPC latency).
func (r *testRig) crashRestart() {
	r.srv.Crash(r.sim.Now())
	r.srv.Restart(r.sim.Now())
}

func TestRecoverServerReopensAndReplays(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]

	file := c.Create(1, 100, false, false)
	h, _, err := c.Open(1, 100, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(h, 10000) // dirty blocks sit in the client cache

	r.crashRestart()
	if got, _ := r.srv.Lookup(file).Registration(c.ID()); got != 0 {
		t.Fatal("registration survived crash")
	}

	res := c.RecoverServer(r.srv)
	if res.GaveUp || res.Files != 1 || res.Reopened != 1 {
		t.Fatalf("recovery = %+v, want 1 file / 1 handle", res)
	}
	if res.ReplayedBytes != 10000 {
		t.Errorf("replayed %d bytes, want 10000", res.ReplayedBytes)
	}
	if c.Cache.FileDirty(file) {
		t.Error("cache still dirty after replay")
	}
	if _, w := r.srv.Lookup(file).Registration(c.ID()); w != 1 {
		t.Errorf("writer registration = %d after recovery, want 1", w)
	}
	// The replayed bytes hit the server's WriteBack counter — conservation.
	if got := r.srv.Stats().WriteBackBytes; got != c.BytesWrittenBack() {
		t.Errorf("server got %d writeback bytes, client shipped %d", got, c.BytesWrittenBack())
	}
	// The normal close must now balance.
	if _, err := c.Close(h); err != nil {
		t.Errorf("close after recovery: %v", err)
	}
}

func TestLazyDetectionOnOpen(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]

	file := c.Create(1, 100, false, false)
	h, _, err := c.Open(1, 100, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(h, 5000)

	r.crashRestart()

	// No explicit recovery call: the next open must notice the epoch bump,
	// run the protocol, and leave the open tables exact.
	other := c.Create(1, 100, false, false)
	h2, _, err := c.Open(1, 100, other, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RecoveryStats().Recoveries; got != 1 {
		t.Fatalf("Recoveries = %d, want 1 (lazy detection missed)", got)
	}
	if _, w := r.srv.Lookup(file).Registration(c.ID()); w != 1 {
		t.Errorf("writer registration = %d after lazy recovery, want 1", w)
	}
	if c.Cache.FileDirty(file) {
		t.Error("dirty data not replayed by lazy recovery")
	}
	if _, err := c.Close(h2); err != nil {
		t.Error(err)
	}
	if _, err := c.Close(h); err != nil {
		t.Error(err)
	}
}

func TestRecoverRetriesThenGivesUpWhileDown(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]

	file := c.Create(1, 100, false, false)
	if _, _, err := c.Open(1, 100, file, false, true, false); err != nil {
		t.Fatal(err)
	}
	r.srv.Crash(r.sim.Now()) // no restart: server stays down

	res := c.RecoverServer(r.srv)
	if !res.GaveUp || res.Retries != RecoveryRetryLimit {
		t.Fatalf("recovery against down server = %+v, want give-up after %d retries", res, RecoveryRetryLimit)
	}
	// Exponential backoff: total wait is (2^limit - 1) * base.
	want := time.Duration((1<<RecoveryRetryLimit)-1) * RecoveryBackoff
	if res.Latency != want {
		t.Errorf("backoff latency = %v, want %v", res.Latency, want)
	}
	if got := c.RecoveryStats().GaveUp; got != 1 {
		t.Errorf("GaveUp = %d, want 1", got)
	}

	// After restart the abandoned recovery must still happen lazily.
	r.srv.Restart(r.sim.Now())
	res = c.RecoverServer(r.srv)
	if res.GaveUp || res.Files != 1 {
		t.Fatalf("post-restart recovery = %+v", res)
	}
}

func TestRecoveryIsIdempotentAtClient(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]

	file := c.Create(1, 100, false, false)
	if _, _, err := c.Open(1, 100, file, false, true, false); err != nil {
		t.Fatal(err)
	}
	r.crashRestart()

	c.RecoverServer(r.srv)
	// Second call is a no-op: the epoch is synced, nothing was lost.
	res := c.RecoverServer(r.srv)
	if res.Files != 0 || res.Reopened != 0 {
		t.Errorf("duplicate recovery did work: %+v", res)
	}
	if _, w := r.srv.Lookup(file).Registration(c.ID()); w != 1 {
		t.Errorf("writer registration = %d, want 1 (double-counted)", w)
	}
}

func TestRecoveryRedetectsSharingAcrossClients(t *testing.T) {
	r := newRig(t, 2)
	writer, reader := r.clients[0], r.clients[1]

	file := writer.Create(1, 100, false, false)
	hw, _, err := writer.Open(1, 100, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	hr, _, err := reader.Open(2, 200, file, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.srv.Lookup(file).Uncacheable() {
		t.Fatal("no write-sharing before crash")
	}
	r.crashRestart()

	reader.RecoverServer(r.srv)
	if r.srv.Lookup(file).Uncacheable() {
		t.Fatal("sharing re-detected with only a reader registered")
	}
	writer.RecoverServer(r.srv)
	if !r.srv.Lookup(file).Uncacheable() {
		t.Fatal("write-sharing not re-detected after both recovered")
	}
	if got := r.srv.Stats().RecoveryCWS; got != 1 {
		t.Errorf("RecoveryCWS = %d, want 1", got)
	}
	writer.Close(hw)
	reader.Close(hr)
}

func TestClientCrashMeasuresLossAndDisconnects(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]

	file := c.Create(1, 100, false, false)
	h, _, err := c.Open(1, 100, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(h, 3000)

	loss := c.Crash(r.sim.Now())
	if loss.DirtyBytes != 3000 {
		t.Errorf("lost %d dirty bytes, want 3000", loss.DirtyBytes)
	}
	if dropped := r.srv.Disconnect(c.ID(), r.sim.Now()); dropped != 1 {
		t.Errorf("server dropped %d registrations, want 1", dropped)
	}
	st := c.RecoveryStats()
	if st.Crashes != 1 || st.LostDirtyBytes != 3000 {
		t.Errorf("recovery stats = %+v", st)
	}
	// The dead machine's handles are gone; a fresh open works normally.
	if _, _, err := c.Open(1, 100, file, true, false, false); err != nil {
		t.Errorf("open after client crash: %v", err)
	}
}
