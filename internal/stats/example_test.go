package stats_test

import (
	"fmt"

	"spritefs/internal/stats"
)

// Demonstrates the dual-weighted histograms behind Figures 1, 2 and 4:
// the same samples, weighted by count and by bytes, tell the paper's
// "most files are small / most bytes are in big files" story.
func ExampleHist() {
	byFiles := stats.NewHist(1, 1e8, 8)
	byBytes := stats.NewHist(1, 1e8, 8)
	sizes := []float64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 20 << 20} // four small, one 20 MB
	for _, s := range sizes {
		byFiles.Add1(s)
		byBytes.Add(s, s)
	}
	fmt.Printf("files <= 10KB: %.0f%%\n", 100*byFiles.FracAtOrBelow(10<<10))
	fmt.Printf("bytes in files <= 10KB: %.1f%%\n", 100*byBytes.FracAtOrBelow(10<<10))
	// Output:
	// files <= 10KB: 80%
	// bytes in files <= 10KB: 0.1%
}

// Demonstrates the streaming mean/stddev accumulator used by every
// counter aggregation.
func ExampleWelford() {
	var w stats.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("n=%d mean=%g stddev=%g\n", w.N(), w.Mean(), w.Stddev())
	// Output:
	// n=8 mean=5 stddev=2
}
