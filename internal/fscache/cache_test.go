package fscache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var noAttr = Attr{}

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(0)
}

func TestReadMissThenHit(t *testing.T) {
	c := New(100)
	// 8 KB file: two blocks.
	res := c.Read(1, 0, 8192, 8192, noAttr, sec(0))
	if res.MissBytes != 8192 || res.MissBlocks != 2 {
		t.Errorf("first read: %+v", res)
	}
	res = c.Read(1, 0, 8192, 8192, noAttr, sec(1))
	if res.MissBytes != 0 || res.MissBlocks != 0 {
		t.Errorf("second read not a hit: %+v", res)
	}
	st := c.Stats()
	if st.All.ReadOps != 4 || st.All.ReadMisses != 2 {
		t.Errorf("ops=%d misses=%d, want 4/2", st.All.ReadOps, st.All.ReadMisses)
	}
	if st.All.BytesRead != 16384 {
		t.Errorf("BytesRead = %d", st.All.BytesRead)
	}
}

func TestReadSmallFileFetchesOnlyFileBytes(t *testing.T) {
	// A 1 KB file occupies one block but only 1 KB travels on a miss —
	// the reason Table 6's miss *traffic* can be below the miss *ratio*.
	c := New(10)
	res := c.Read(1, 0, 1024, 1024, noAttr, 0)
	if res.MissBytes != 1024 {
		t.Errorf("MissBytes = %d, want 1024", res.MissBytes)
	}
}

func TestReadBeyondSizePanics(t *testing.T) {
	c := New(10)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	c.Read(1, 0, 2048, 1024, noAttr, 0)
}

func TestReadZeroLength(t *testing.T) {
	c := New(10)
	if res := c.Read(1, 0, 0, 100, noAttr, 0); res.MissBytes != 0 {
		t.Errorf("zero-length read fetched %d", res.MissBytes)
	}
}

func TestWriteMakesDirtyAndCleanAfterDelay(t *testing.T) {
	c := New(10)
	c.Write(1, 0, 4096, 0, noAttr, sec(0))
	if c.DirtyBytes() != 4096 {
		t.Errorf("DirtyBytes = %d", c.DirtyBytes())
	}
	// Cleaner before 30 s: nothing.
	if wbs := c.Clean(sec(29)); len(wbs) != 0 {
		t.Errorf("early clean returned %d writebacks", len(wbs))
	}
	wbs := c.Clean(sec(31))
	if len(wbs) != 1 {
		t.Fatalf("clean returned %d writebacks", len(wbs))
	}
	wb := wbs[0]
	if wb.Reason != CleanDelay || wb.Bytes != 4096 || wb.File != 1 {
		t.Errorf("writeback = %+v", wb)
	}
	if c.DirtyBytes() != 0 {
		t.Errorf("dirty after clean: %d", c.DirtyBytes())
	}
	// Idempotent: nothing left to clean.
	if wbs := c.Clean(sec(60)); len(wbs) != 0 {
		t.Errorf("second clean returned %d", len(wbs))
	}
}

func TestCleanFlushesWholeFile(t *testing.T) {
	// "All dirty blocks for a file are written to the server if any block
	// in the file has been dirty for 30 seconds."
	c := New(10)
	c.Write(1, 0, 4096, 0, noAttr, sec(0))        // old block
	c.Write(1, 4096, 4096, 4096, noAttr, sec(25)) // young block, same file
	c.Write(2, 0, 4096, 0, noAttr, sec(25))       // young block, other file
	wbs := c.Clean(sec(31))
	if len(wbs) != 2 {
		t.Fatalf("clean returned %d writebacks, want 2 (whole file 1)", len(wbs))
	}
	for _, wb := range wbs {
		if wb.File != 1 {
			t.Errorf("cleaned block of file %d", wb.File)
		}
	}
}

func TestWriteFetchOnPartialNonResident(t *testing.T) {
	c := New(10)
	// File of 4096 bytes exists on the server; overwrite bytes 100-200
	// without the block resident -> write fetch.
	res := c.Write(1, 100, 100, 4096, noAttr, 0)
	if res.FetchBlocks != 1 || res.FetchBytes != 4096 {
		t.Errorf("write fetch: %+v", res)
	}
	if got := c.Stats().All.WriteFetches; got != 1 {
		t.Errorf("WriteFetches = %d", got)
	}
	// A second partial write to the now-resident block: no fetch.
	res = c.Write(1, 200, 100, 4096, noAttr, 0)
	if res.FetchBlocks != 0 {
		t.Errorf("resident partial write fetched: %+v", res)
	}
}

func TestNoWriteFetchForAppendOrFullBlock(t *testing.T) {
	c := New(10)
	// Append at the end of a block-aligned file: no existing data in the
	// new block, no fetch.
	res := c.Write(1, 4096, 100, 4096, noAttr, 0)
	if res.FetchBlocks != 0 {
		t.Errorf("append caused write fetch: %+v", res)
	}
	// Full-block overwrite: no fetch either.
	res = c.Write(2, 0, 4096, 4096, noAttr, 0)
	if res.FetchBlocks != 0 {
		t.Errorf("full-block overwrite caused write fetch: %+v", res)
	}
}

func TestAppendWritebackIncludesBlockPrefix(t *testing.T) {
	// "While the application may append only a few bytes to the file, the
	// data written back includes the portion from the beginning of the
	// cache block to the end of the appended data."
	c := New(10)
	c.Write(1, 0, 100, 0, noAttr, sec(0))
	c.Write(1, 100, 50, 100, noAttr, sec(1))
	wbs := c.Clean(sec(40))
	if len(wbs) != 1 {
		t.Fatalf("writebacks = %d", len(wbs))
	}
	if wbs[0].Bytes != 150 {
		t.Errorf("writeback bytes = %d, want 150", wbs[0].Bytes)
	}
	// 150 new bytes written, 150 written back: ratio 100%.
	st := c.Stats()
	if st.BytesWrittenBack != 150 || st.All.BytesWritten != 150 {
		t.Errorf("written=%d back=%d", st.All.BytesWritten, st.BytesWrittenBack)
	}
}

func TestDeleteSavesDirtyBytes(t *testing.T) {
	c := New(10)
	c.Write(1, 0, 1000, 0, noAttr, sec(0))
	saved := c.Delete(1)
	if saved != 1000 {
		t.Errorf("saved = %d", saved)
	}
	st := c.Stats()
	if st.BytesSavedByDelete != 1000 {
		t.Errorf("BytesSavedByDelete = %d", st.BytesSavedByDelete)
	}
	if st.BytesWrittenBack != 0 {
		t.Errorf("deleted bytes were written back")
	}
	if c.NumBlocks() != 0 {
		t.Errorf("blocks remain after delete")
	}
	if wbs := c.Clean(sec(60)); len(wbs) != 0 {
		t.Errorf("clean after delete returned %d", len(wbs))
	}
}

func TestTruncate(t *testing.T) {
	c := New(10)
	// Write three blocks dirty.
	c.Write(1, 0, 3*BlockSize, 0, noAttr, sec(0))
	saved := c.Truncate(1, BlockSize+100)
	// Block 2 fully dropped (4096 dirty), block 1 trimmed to 100 (3996 saved).
	if want := int64(BlockSize + BlockSize - 100); saved != want {
		t.Errorf("saved = %d, want %d", saved, want)
	}
	if c.NumBlocks() != 2 {
		t.Errorf("blocks = %d, want 2", c.NumBlocks())
	}
	if c.DirtyBytes() != BlockSize+100 {
		t.Errorf("dirty = %d", c.DirtyBytes())
	}
	// Truncate to zero drops everything.
	c.Truncate(1, 0)
	if c.NumBlocks() != 0 {
		t.Errorf("blocks after truncate-to-zero = %d", c.NumBlocks())
	}
}

func TestFsyncAndRecall(t *testing.T) {
	c := New(10)
	c.Write(1, 0, 4096, 0, noAttr, sec(0))
	wbs := c.Fsync(1, sec(1))
	if len(wbs) != 1 || wbs[0].Reason != CleanFsync {
		t.Errorf("fsync: %+v", wbs)
	}
	c.Write(2, 0, 4096, 0, noAttr, sec(2))
	wbs = c.Recall(2, sec(3))
	if len(wbs) != 1 || wbs[0].Reason != CleanRecall {
		t.Errorf("recall: %+v", wbs)
	}
	if wbs[0].Age != sec(1) {
		t.Errorf("recall age = %v, want 1s", wbs[0].Age)
	}
	st := c.Stats()
	if st.Cleaned[CleanFsync] != 1 || st.Cleaned[CleanRecall] != 1 {
		t.Errorf("cleaned counters: %+v", st.Cleaned)
	}
	// Fsync of a clean file is a no-op.
	if wbs := c.Fsync(1, sec(5)); len(wbs) != 0 {
		t.Errorf("fsync of clean file: %v", wbs)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(10)
	c.Read(1, 0, 4096, 4096, noAttr, 0)
	if !c.Contains(1, 0) {
		t.Fatal("block not resident")
	}
	c.Invalidate(1)
	if c.Contains(1, 0) || c.NumBlocks() != 0 {
		t.Error("invalidate left blocks")
	}
}

func TestLRUEvictionOrderAndReplacementCounters(t *testing.T) {
	c := New(2)
	c.Read(1, 0, 4096, 4096, noAttr, sec(0))
	c.Read(2, 0, 4096, 4096, noAttr, sec(1))
	c.Read(1, 0, 4096, 4096, noAttr, sec(2)) // touch file 1
	// Inserting a third block evicts file 2's block (LRU).
	c.Read(3, 0, 4096, 4096, noAttr, sec(3))
	if c.Contains(2, 0) {
		t.Error("LRU block not evicted")
	}
	if !c.Contains(1, 0) {
		t.Error("recently used block evicted")
	}
	st := c.Stats()
	if st.ReplacedFile != 1 || st.ReplacedVM != 0 {
		t.Errorf("replacement counters: file=%d vm=%d", st.ReplacedFile, st.ReplacedVM)
	}
	// Replacement age: last ref at 1 s, evicted at 3 s => 2 s.
	if got := st.ReplacementAge.Mean(); got != float64(sec(2)) {
		t.Errorf("replacement age = %v", time.Duration(got))
	}
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	c := New(1)
	c.Write(1, 0, 4096, 0, noAttr, sec(0))
	res := c.Read(2, 0, 4096, 4096, noAttr, sec(1))
	if len(res.Evicted) != 1 {
		t.Fatalf("dirty eviction writebacks = %d", len(res.Evicted))
	}
	if res.Evicted[0].Reason != CleanEvict {
		t.Errorf("reason = %v", res.Evicted[0].Reason)
	}
}

func TestTakeForVMAndGrowBy(t *testing.T) {
	c := New(4)
	for f := uint64(1); f <= 4; f++ {
		c.Read(f, 0, 4096, 4096, noAttr, sec(int(f)))
	}
	wbs, released := c.TakeForVM(2, sec(10))
	if released != 2 || len(wbs) != 0 {
		t.Errorf("released=%d wbs=%d", released, len(wbs))
	}
	if c.Capacity() != 2 {
		t.Errorf("capacity after take = %d", c.Capacity())
	}
	st := c.Stats()
	if st.ReplacedVM != 2 {
		t.Errorf("ReplacedVM = %d", st.ReplacedVM)
	}
	c.GrowBy(3)
	if c.Capacity() != 5 {
		t.Errorf("capacity after grow = %d", c.Capacity())
	}
	c.GrowBy(-1)
	if c.Capacity() != 5 {
		t.Errorf("GrowBy(-1) changed capacity")
	}
}

func TestTakeForVMDirty(t *testing.T) {
	c := New(2)
	c.Write(1, 0, 4096, 0, noAttr, sec(0))
	wbs, released := c.TakeForVM(1, sec(5))
	if released != 1 || len(wbs) != 1 || wbs[0].Reason != CleanVM {
		t.Errorf("released=%d wbs=%+v", released, wbs)
	}
	st := c.Stats()
	if st.Cleaned[CleanVM] != 1 {
		t.Errorf("CleanVM count = %d", st.Cleaned[CleanVM])
	}
}

func TestTakeForVMNeverBelowOneCapacity(t *testing.T) {
	c := New(2)
	c.Read(1, 0, 4096, 4096, noAttr, 0)
	c.Read(2, 0, 4096, 4096, noAttr, 0)
	_, released := c.TakeForVM(10, sec(1))
	if released != 2 {
		t.Errorf("released = %d", released)
	}
	if c.Capacity() < 1 {
		t.Errorf("capacity fell to %d", c.Capacity())
	}
}

func TestSetCapacityEvicts(t *testing.T) {
	c := New(4)
	for f := uint64(1); f <= 4; f++ {
		c.Read(f, 0, 4096, 4096, noAttr, sec(int(f)))
	}
	c.SetCapacity(2, true, sec(10))
	if c.NumBlocks() != 2 {
		t.Errorf("blocks = %d", c.NumBlocks())
	}
	if st := c.Stats(); st.ReplacedVM != 2 {
		t.Errorf("ReplacedVM = %d", st.ReplacedVM)
	}
	c.SetCapacity(0, false, sec(11)) // clamped to 1
	if c.Capacity() != 1 {
		t.Errorf("capacity = %d", c.Capacity())
	}
}

func TestOldestRef(t *testing.T) {
	c := New(4)
	if _, ok := c.OldestRef(); ok {
		t.Error("empty cache has an oldest ref")
	}
	c.Read(1, 0, 4096, 4096, noAttr, sec(5))
	c.Read(2, 0, 4096, 4096, noAttr, sec(9))
	ref, ok := c.OldestRef()
	if !ok || ref != sec(5) {
		t.Errorf("OldestRef = %v, %v", ref, ok)
	}
}

func TestMigratedAndPagingAttribution(t *testing.T) {
	c := New(10)
	c.Read(1, 0, 4096, 4096, Attr{Migrated: true}, 0)
	c.Read(2, 0, 4096, 4096, Attr{Paging: true}, 0)
	c.Read(3, 0, 4096, 4096, Attr{Paging: true, Migrated: true}, 0)
	st := c.Stats()
	if st.All.ReadOps != 3 || st.All.ReadMisses != 3 {
		t.Errorf("all: %+v", st.All)
	}
	if st.Migrated.ReadOps != 2 || st.Migrated.ReadMisses != 2 {
		t.Errorf("migrated: %+v", st.Migrated)
	}
	if st.All.PagingReadOps != 2 || st.Migrated.PagingReadOps != 1 {
		t.Errorf("paging: all=%d mig=%d", st.All.PagingReadOps, st.Migrated.PagingReadOps)
	}
}

func TestOverwriteDoesNotDoubleCountDirty(t *testing.T) {
	c := New(10)
	c.Write(1, 0, 1000, 0, noAttr, sec(0))
	c.Write(1, 0, 1000, 1000, noAttr, sec(1))
	if c.DirtyBytes() != 1000 {
		t.Errorf("DirtyBytes = %d, want 1000", c.DirtyBytes())
	}
	// The 30-second clock runs from the FIRST dirtying write.
	wbs := c.Clean(sec(31))
	if len(wbs) != 1 {
		t.Errorf("block not cleaned at 31s despite first write at 0s")
	}
}

// Property: cache never exceeds capacity, and dirty bytes are always
// non-negative and bounded by resident bytes, across random op sequences.
func TestCacheInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(rng.Intn(8) + 2)
		sizes := map[uint64]int64{}
		now := time.Duration(0)
		for i := 0; i < 300; i++ {
			now += time.Duration(rng.Intn(3000)) * time.Millisecond
			file := uint64(rng.Intn(5) + 1)
			switch rng.Intn(6) {
			case 0, 1: // read
				if sizes[file] > 0 {
					off := rng.Int63n(sizes[file])
					l := rng.Int63n(sizes[file]-off) + 1
					c.Read(file, off, l, sizes[file], noAttr, now)
				}
			case 2, 3: // write (append or overwrite)
				off := int64(0)
				if sizes[file] > 0 {
					off = rng.Int63n(sizes[file] + 1)
				}
				l := int64(rng.Intn(3*BlockSize) + 1)
				c.Write(file, off, l, sizes[file], noAttr, now)
				if off+l > sizes[file] {
					sizes[file] = off + l
				}
			case 4: // clean
				c.Clean(now)
			case 5: // delete
				c.Delete(file)
				sizes[file] = 0
			}
			if c.NumBlocks() > c.Capacity() {
				return false
			}
			if c.DirtyBytes() < 0 || c.DirtyBytes() > c.SizeBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: bytes written == bytes written back + bytes saved + bytes
// still dirty, when writes never overlap (each write goes to a fresh file
// region via append).
func TestWriteByteConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(1 << 20) // effectively unbounded: no evictions
		sizes := map[uint64]int64{}
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Duration(rng.Intn(5000)) * time.Millisecond
			file := uint64(rng.Intn(4) + 1)
			switch rng.Intn(4) {
			case 0, 1, 2: // append exactly one block to keep regions disjoint
				c.Write(file, sizes[file], BlockSize, sizes[file], noAttr, now)
				sizes[file] += BlockSize
			case 3:
				c.Delete(file)
				sizes[file] = 0
			}
			c.Clean(now)
		}
		st := c.Stats()
		return st.All.BytesWritten == st.BytesWrittenBack+st.BytesSavedByDelete+c.DirtyBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCleanReasonString(t *testing.T) {
	if CleanDelay.String() != "delay" || CleanVM.String() != "vm" {
		t.Error("reason names wrong")
	}
	if CleanReason(99).String() != "reason(99)" {
		t.Error("unknown reason name wrong")
	}
}

func TestCrossBlockWrite(t *testing.T) {
	c := New(10)
	// Write spanning three blocks starting mid-block on an existing file.
	res := c.Write(1, 2048, 2*BlockSize, 3*BlockSize, noAttr, 0)
	// Leading and trailing blocks are partial overwrites of existing,
	// non-resident data => both need write fetches; the full middle block
	// does not.
	if res.FetchBlocks != 2 {
		t.Errorf("FetchBlocks = %d, want 2 (leading and trailing partial blocks)", res.FetchBlocks)
	}
	if c.NumBlocks() != 3 {
		t.Errorf("blocks = %d, want 3", c.NumBlocks())
	}
}
