package fscache

import (
	"testing"
	"time"
)

// The cleaner's periodic sweep is required to be allocation-free in
// steady state: after the block arena, per-file indexes and scratch
// buffers reach their high-water marks, dirtying files and sweeping them
// with Clean must not touch the garbage collector. `make allocscheck`
// runs these gates alongside the scheduler's and network's.

func TestCleanSweepZeroAllocSteadyState(t *testing.T) {
	const nfiles = 16
	c := New(256)
	now := time.Duration(0)
	dirtyAll := func() {
		for f := uint64(1); f <= nfiles; f++ {
			c.Write(f, 0, 2*BlockSize, 0, noAttr, now)
		}
	}
	// Warm-up: populate every index and scratch buffer once, then drain.
	dirtyAll()
	now += WritebackDelay
	c.Clean(now)

	allocs := testing.AllocsPerRun(100, func() {
		now += time.Second
		dirtyAll()
		now += WritebackDelay
		if wbs := c.Clean(now); len(wbs) != 2*nfiles {
			t.Fatalf("swept %d writebacks, want %d", len(wbs), 2*nfiles)
		}
	})
	if allocs != 0 {
		t.Fatalf("dirty+Clean cycle allocated %.1f/op in steady state, want 0", allocs)
	}
}

// TestFlushFileZeroAllocSteadyState pins the same property for the
// synchronous flush paths (Fsync/Recall share flushFile).
func TestFlushFileZeroAllocSteadyState(t *testing.T) {
	c := New(64)
	now := time.Duration(0)
	c.Write(7, 0, BlockSize, 0, noAttr, now)
	c.Fsync(7, now)

	allocs := testing.AllocsPerRun(100, func() {
		now += time.Second
		c.Write(7, 0, BlockSize, 0, noAttr, now)
		if wbs := c.Fsync(7, now); len(wbs) != 1 {
			t.Fatalf("fsync returned %d writebacks, want 1", len(wbs))
		}
	})
	if allocs != 0 {
		t.Fatalf("write+Fsync cycle allocated %.1f/op in steady state, want 0", allocs)
	}
}
