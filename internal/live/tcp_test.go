package live

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestCodecRoundTrip pushes requests and responses through encode/decode
// and requires byte-exact field recovery, including negative offsets,
// error strings, and the frame length prefix.
func TestCodecRoundTrip(t *testing.T) {
	reqs := []Request{
		{},
		{Verb: VerbOpen, Agent: 7, File: 0xdeadbeefcafe, Write: true},
		{Verb: VerbRead, Agent: -1, Handle: ^uint64(0), Offset: -8, Length: 1 << 40},
		{Verb: VerbGetattr, Agent: 39, File: 42},
	}
	for i, in := range reqs {
		frame := encodeRequest(nil, &in, 1500*time.Millisecond)
		if len(frame) != 4+reqPayloadLen {
			t.Fatalf("req %d: frame length %d, want %d", i, len(frame), 4+reqPayloadLen)
		}
		out, deadline, err := decodeRequest(frame[4:])
		if err != nil {
			t.Fatalf("req %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("req %d: round trip %+v -> %+v", i, in, out)
		}
		if deadline != 1500*time.Millisecond {
			t.Errorf("req %d: deadline %v", i, deadline)
		}
	}

	resps := []Response{
		{},
		{Handle: 99, N: -1, Size: 1 << 50, SimLat: 3 * time.Millisecond},
		{Err: "live: read on unknown handle", Retryable: true},
		{Err: strings.Repeat("x", 4096)},
	}
	for i, in := range resps {
		frame := encodeResponse(nil, &in)
		out, err := decodeResponse(frame[4:])
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("resp %d: round trip mismatch", i)
		}
	}
}

// TestCodecRejectsBadFrames checks the defensive paths: wrong request
// length, unknown verb, truncated response, oversized frame.
func TestCodecRejectsBadFrames(t *testing.T) {
	if _, _, err := decodeRequest(make([]byte, reqPayloadLen-1)); err == nil {
		t.Error("short request frame accepted")
	}
	bad := make([]byte, reqPayloadLen)
	bad[0] = byte(NumVerbs)
	if _, _, err := decodeRequest(bad); err == nil {
		t.Error("unknown verb accepted")
	}
	if _, err := decodeResponse(make([]byte, respFixedLen-1)); err == nil {
		t.Error("short response frame accepted")
	}
	var in Response
	frame := encodeResponse(nil, &in)
	// Corrupt the length prefix beyond the reader's limit.
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := readFrame(strings.NewReader(string(frame)), maxRespPayload); err == nil {
		t.Error("oversized frame accepted")
	}
}

// echoTransport is a test double standing in for the dispatcher behind a
// TCPServer.
type echoTransport struct {
	fn func(Request, time.Duration) (Response, error)
}

func (e *echoTransport) Do(req Request, d time.Duration) (Response, error) { return e.fn(req, d) }
func (e *echoTransport) Close() error                                      { return nil }

// TestTCPLoopback runs requests through a real socket pair and checks the
// fields survive, server-side errors surface as error replies, and a
// server-side ErrDeadline maps back to the client's ErrDeadline.
func TestTCPLoopback(t *testing.T) {
	inner := &echoTransport{fn: func(req Request, d time.Duration) (Response, error) {
		switch req.Verb {
		case VerbOpen:
			return Response{Handle: req.File + 1, Size: 4096, SimLat: time.Millisecond}, nil
		case VerbRead:
			return Response{}, ErrDeadline
		case VerbWrite:
			return Response{Err: "boom", Retryable: true}, nil
		default:
			return Response{N: req.Length}, nil
		}
	}}
	srv, err := ServeTCP("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Do(Request{Verb: VerbOpen, File: 41}, time.Second)
	if err != nil || resp.Handle != 42 || resp.Size != 4096 || resp.SimLat != time.Millisecond {
		t.Fatalf("open over loopback: err=%v resp=%+v", err, resp)
	}
	if _, err := cl.Do(Request{Verb: VerbRead}, time.Second); !errors.Is(err, ErrDeadline) {
		t.Fatalf("server-side deadline: err=%v, want ErrDeadline", err)
	}
	resp, err = cl.Do(Request{Verb: VerbWrite}, time.Second)
	if err != nil || resp.Err != "boom" || !resp.Retryable {
		t.Fatalf("error reply: err=%v resp=%+v", err, resp)
	}
	// The connection survives all of the above: one more normal request.
	resp, err = cl.Do(Request{Verb: VerbClose, Length: 9}, time.Second)
	if err != nil || resp.N != 9 {
		t.Fatalf("post-error request: err=%v resp=%+v", err, resp)
	}
}

// TestTCPClientRedialsAfterServerClose checks the poison-and-redial path:
// when the server drops connections, the next Do dials fresh instead of
// failing forever.
func TestTCPClientRedialsAfterServerClose(t *testing.T) {
	inner := &echoTransport{fn: func(req Request, d time.Duration) (Response, error) {
		return Response{N: req.Length}, nil
	}}
	srv, err := ServeTCP("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do(Request{Length: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cl.Do(Request{Length: 2}, 200*time.Millisecond); err == nil {
		t.Fatal("Do succeeded against a closed server")
	}
	srv2, err := ServeTCP(addr, inner)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	resp, err := cl.Do(Request{Length: 3}, time.Second)
	if err != nil || resp.N != 3 {
		t.Fatalf("redial after server restart: err=%v resp=%+v", err, resp)
	}
}
