package stats

import (
	"testing"
	"time"
)

func TestIntervalAggPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero width")
		}
	}()
	NewIntervalAgg(0)
}

func TestIntervalAggBasic(t *testing.T) {
	a := NewIntervalAgg(10 * time.Second)
	// Two users in interval 0, one in interval 1.
	a.Add(1*time.Second, 1, 100)
	a.Add(2*time.Second, 2, 200)
	a.Add(9*time.Second, 1, 50)
	a.Add(11*time.Second, 1, 300)

	if n := a.NumIntervals(); n != 2 {
		t.Errorf("NumIntervals = %d, want 2", n)
	}
	s := a.Summarize()
	if s.MaxActive != 2 {
		t.Errorf("MaxActive = %d, want 2", s.MaxActive)
	}
	if got := s.ActiveUsers.Mean(); got != 1.5 {
		t.Errorf("mean active users = %g, want 1.5", got)
	}
	// User-intervals: (1,i0)=150, (2,i0)=200, (1,i1)=300.
	if s.PerUser.N() != 3 {
		t.Errorf("user-intervals = %d, want 3", s.PerUser.N())
	}
	if s.PeakUser != 300 {
		t.Errorf("PeakUser = %g, want 300", s.PeakUser)
	}
	if s.PeakTotal != 350 {
		t.Errorf("PeakTotal = %g, want 350", s.PeakTotal)
	}
}

func TestIntervalAggTouch(t *testing.T) {
	a := NewIntervalAgg(time.Minute)
	a.Touch(30*time.Second, 7)
	s := a.Summarize()
	if s.MaxActive != 1 {
		t.Errorf("Touch did not mark user active: MaxActive = %d", s.MaxActive)
	}
	if s.PerUser.Sum() != 0 {
		t.Errorf("Touch added value: %g", s.PerUser.Sum())
	}
}

func TestIntervalBoundaries(t *testing.T) {
	a := NewIntervalAgg(10 * time.Second)
	if a.Index(0) != 0 || a.Index(9999*time.Millisecond) != 0 {
		t.Error("values inside first interval mis-indexed")
	}
	if a.Index(10*time.Second) != 1 {
		t.Error("boundary value should open a new interval")
	}
}

func TestEmptyIntervalsNotCounted(t *testing.T) {
	// The paper averages over intervals with activity; silent intervals
	// between bursts must not dilute the per-interval statistics.
	a := NewIntervalAgg(10 * time.Second)
	a.Add(5*time.Second, 1, 10)
	a.Add(95*time.Second, 1, 10)
	if n := a.NumIntervals(); n != 2 {
		t.Errorf("NumIntervals = %d, want 2 (gaps must not count)", n)
	}
}
