package scale_test

import (
	"fmt"
	"testing"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/faults"
	"spritefs/internal/scale"
	"spritefs/internal/sim"
	"spritefs/internal/workload"
)

// fuzzSeeds is the corpus size: each seed derives a random topology
// (shard count, hierarchical site grouping with random tier pricing,
// community size, server groups, link latencies including occasional
// zero-latency links, remote-traffic mix, fault schedules) that is run
// sequentially and in parallel at every worker count.
const fuzzSeeds = 50

// fuzzConfig derives one random topology from a seed. Everything —
// including the per-shard fault schedules and the per-link latency
// matrix — is drawn up front from a single deterministic stream, so the
// same Config can instantiate any number of engines identically.
func fuzzConfig(seed int64) (scale.Config, time.Duration) {
	rng := sim.NewRand(seed ^ 0x5eedf022)

	shards := 2 + rng.Intn(7)   // 2..8 segments
	perShard := 2 + rng.Intn(3) // 2..4 clients each
	servers := 1 + rng.Intn(3)  // 1..3 servers per shard
	clients := shards * perShard

	// Half the corpus regroups the segments into a hierarchical topology:
	// a random divisor of the segment count becomes the site count (the
	// whole range from 2 sites of several segments down to one segment
	// per site), with randomly priced tiers including the zero-latency
	// WAN and zero-latency site-backbone corners the stall-breaker covers.
	sites := 1
	var tiers scale.TiersConfig
	if rng.Bool(0.5) {
		var divs []int
		for d := 2; d <= shards; d++ {
			if shards%d == 0 {
				divs = append(divs, d)
			}
		}
		sites = divs[rng.Intn(len(divs))]
		tiers = scale.TiersConfig{
			Site: scale.Tier{
				Latency:      time.Duration(rng.Range(float64(20*time.Microsecond), float64(3*time.Millisecond))),
				BandwidthBps: rng.Range(1e6, 1e9),
			},
			WAN: scale.Tier{
				Latency:      time.Duration(rng.Range(float64(1*time.Millisecond), float64(80*time.Millisecond))),
				BandwidthBps: rng.Range(1e5, 1e8),
			},
		}
		if rng.Bool(0.15) {
			tiers.WAN.Latency = 0
		}
		if rng.Bool(0.1) {
			tiers.Site.Latency = 0
		}
	}

	p := workload.Default(1000 + seed)
	p.NumClients = clients
	p.DailyUsers = clients - clients/4 - 1
	p.OccasionalUsers = clients / 4
	p.BigSimUsers = 1

	router := scale.RouterConfig{
		Latency:      time.Duration(rng.Range(float64(50*time.Microsecond), float64(5*time.Millisecond))),
		BandwidthBps: rng.Range(1e6, 1e9),
	}
	if rng.Bool(1.0 / 3) {
		// Heterogeneous links: a latency matrix with occasional
		// zero-latency links, exercising per-link lookahead and the
		// stall-breaker.
		lat := make([][]time.Duration, shards)
		for i := range lat {
			lat[i] = make([]time.Duration, shards)
			for j := range lat[i] {
				if i == j {
					continue
				}
				if rng.Bool(0.1) {
					lat[i][j] = 0
				} else {
					lat[i][j] = time.Duration(rng.Range(float64(10*time.Microsecond), float64(4*time.Millisecond)))
				}
			}
		}
		router.LinkLatency = func(from, to int) time.Duration { return lat[from][to] }
	}

	remote := scale.RemoteConfig{
		OpsPerClientHour: rng.Range(30, 600),
		ReadFrac:         rng.Range(0.2, 1.0),
		BytesMedian:      rng.Range(512, 64*1024),
		BytesSigma:       rng.Range(0.3, 1.5),
	}
	if sites > 1 {
		remote.SiteAffinity = rng.Range(0, 1)
	}

	horizon := time.Duration(rng.Range(float64(4*time.Minute), float64(10*time.Minute)))

	cfg := scale.Config{
		Base:            p,
		Shards:          shards,
		Sites:           sites,
		Tiers:           tiers,
		ServersPerShard: servers,
		Router:          router,
		Remote:          remote,
	}
	if rng.Bool(0.5) {
		// Per-shard fault schedules, precomputed so Tune stays a pure
		// function of the shard index across engine instantiations.
		schedules := make([]faults.Schedule, shards)
		for i := range schedules {
			schedules[i] = faults.Random(rng.Fork(), horizon, 1+rng.Intn(3), servers, perShard)
		}
		cfg.Tune = func(shard int, ccfg *cluster.Config) {
			ccfg.Faults = schedules[shard]
		}
	}
	return cfg, horizon
}

// runFuzzSeed runs one corpus entry sequentially and at each parallel
// worker count, asserting byte-identical reports and full
// metrics-registry dumps.
func runFuzzSeed(t *testing.T, seed int64, workerCounts []int) {
	t.Helper()
	cfg, horizon := fuzzConfig(seed)
	ref := scale.MustNew(cfg)
	refStats := ref.Run(scale.RunOptions{Horizon: horizon})
	want := fingerprint(t, ref)
	for _, w := range workerCounts {
		e := scale.MustNew(cfg)
		st := e.Run(scale.RunOptions{Horizon: horizon, Parallel: true, Workers: w})
		if got := fingerprint(t, e); got != want {
			t.Errorf("seed %d: workers=%d output differs from sequential\n%s", seed, w, firstDiff(want, got))
		}
		if st.Exec != refStats.Exec {
			t.Errorf("seed %d: workers=%d exec stats differ: sequential %+v parallel %+v", seed, w, refStats.Exec, st.Exec)
		}
	}
}

// firstDiff locates the first divergent line of two fingerprints so a
// fuzz failure is diagnosable without dumping two full registries.
func firstDiff(want, got string) string {
	w, g := 0, 0
	line := 1
	for w < len(want) && g < len(got) {
		we, ge := w, g
		for we < len(want) && want[we] != '\n' {
			we++
		}
		for ge < len(got) && got[ge] != '\n' {
			ge++
		}
		if want[w:we] != got[g:ge] {
			return fmt.Sprintf("first differing line %d:\n  sequential: %s\n  parallel:   %s", line, want[w:we], got[g:ge])
		}
		w, g = we+1, ge+1
		line++
	}
	if len(want) != len(got) {
		return fmt.Sprintf("fingerprints differ in length: sequential %d bytes, parallel %d bytes", len(want), len(got))
	}
	return "fingerprints differ"
}

// TestDeterminismFuzz sweeps the corpus: ~50 seeded random topologies,
// each run sequentially and in parallel at 1, 2, 4 and 8 workers, with
// byte-identity of report tables plus the full metrics dump required
// throughout. -short trims the corpus for quick local runs; the full
// sweep runs under `make test`.
func TestDeterminismFuzz(t *testing.T) {
	n := fuzzSeeds
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFuzzSeed(t, seed, []int{1, 2, 4, 8})
		})
	}
}

// TestDetermFuzzSmoke is the corpus's smallest seed alone, kept cheap so
// `make scalecheck` can run it under the race detector at 1, 4 and 8
// workers on every change.
func TestDetermFuzzSmoke(t *testing.T) {
	runFuzzSeed(t, 0, []int{1, 4, 8})
}
