package main

import (
	"os"
	"path/filepath"
	"testing"

	"spritefs/internal/trace"
)

func TestTracegenWritesReadableTraces(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 0.02, dir, 2); err != nil { // ~72 simulated seconds
		t.Fatal(err)
	}
	var total int
	for srv := 0; srv < 2; srv++ {
		path := filepath.Join(dir, "trace1.srv"+string(rune('0'+srv)))
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		recs, err := trace.Collect(r)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for i := range recs {
			if recs[i].Server != int16(srv) {
				t.Fatalf("%s holds record for server %d", path, recs[i].Server)
			}
		}
		total += len(recs)
	}
	if total == 0 {
		t.Fatal("no records written")
	}
}

func TestTracegenRejectsBadTrace(t *testing.T) {
	if err := run(0, 1, t.TempDir(), 1); err == nil {
		t.Error("trace 0 accepted")
	}
	if err := run(9, 1, t.TempDir(), 1); err == nil {
		t.Error("trace 9 accepted")
	}
}
