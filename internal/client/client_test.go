package client

import (
	"testing"
	"time"

	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
	"spritefs/internal/trace"
)

// testRig assembles one server, a network and n clients with a trivial
// coordinator, mirroring the cluster package in miniature.
type testRig struct {
	sim     *sim.Sim
	srv     *server.Server
	net     *netsim.Network
	clients []*Client
	recs    []trace.Record
}

func (r *testRig) Emit(rec trace.Record) { r.recs = append(r.recs, rec) }

func (r *testRig) RecallFrom(client int32, file uint64) {
	r.clients[client].FlushForRecall(file)
}

func (r *testRig) DisableCaching(clients []int32, file uint64) {
	for _, id := range clients {
		r.clients[id].DisableFor(file)
	}
}

func newRig(t *testing.T, n int) *testRig {
	t.Helper()
	r := &testRig{
		sim: sim.New(1),
		srv: server.New(0),
		net: netsim.New(netsim.DefaultConfig()),
	}
	route := func(uint64) *server.Server { return r.srv }
	for i := 0; i < n; i++ {
		cfg := DefaultConfig(int32(i))
		c := New(cfg, r.sim, r.net, route, r.srv, r)
		c.SetCoordinator(r)
		r.clients = append(r.clients, c)
	}
	return r
}

func (r *testRig) kinds() []trace.Kind {
	out := make([]trace.Kind, len(r.recs))
	for i, rec := range r.recs {
		out[i] = rec.Kind
	}
	return out
}

func TestCreateWriteCloseReadRoundTrip(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]

	file := c.Create(1, 100, false, false)
	h, _, err := c.Open(1, 100, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(h, 10000)
	if _, err := c.Close(h); err != nil {
		t.Fatal(err)
	}
	f := r.srv.Lookup(file)
	if f == nil || f.Size != 10000 {
		t.Fatalf("server size = %v", f)
	}

	h2, _, err := c.Open(1, 100, file, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.Read(h2, 99999) // clamped to size
	if got != 10000 {
		t.Errorf("read %d bytes, want 10000", got)
	}
	c.Close(h2)

	// The freshly written data was still cached: no file-read traffic.
	if b := r.net.Total().Bytes[netsim.FileRead]; b != 0 {
		t.Errorf("read of own cached data fetched %d bytes from server", b)
	}

	wantKinds := []trace.Kind{
		trace.KindCreate, trace.KindOpen, trace.KindWrite, trace.KindClose,
		trace.KindOpen, trace.KindRead, trace.KindClose,
	}
	got2 := r.kinds()
	if len(got2) != len(wantKinds) {
		t.Fatalf("trace kinds = %v", got2)
	}
	for i, k := range wantKinds {
		if got2[i] != k {
			t.Errorf("record %d = %v, want %v", i, got2[i], k)
		}
	}
}

func TestDelayedWriteShipsAfter30s(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	c.StartCleaner()
	file := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, file, false, true, false)
	c.Write(h, 8192)
	c.Close(h)

	r.sim.RunUntil(20 * time.Second)
	if b := r.net.Total().Bytes[netsim.FileWrite]; b != 0 {
		t.Errorf("writeback before 30s: %d bytes", b)
	}
	r.sim.RunUntil(40 * time.Second)
	if b := r.net.Total().Bytes[netsim.FileWrite]; b != 8192 {
		t.Errorf("writeback after 30s = %d bytes, want 8192", b)
	}
	c.StopCleaner()
}

func TestDeleteBeforeWritebackSavesTraffic(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	c.StartCleaner()
	file := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, file, false, true, false)
	c.Write(h, 8192)
	c.Close(h)
	r.sim.RunUntil(10 * time.Second)
	c.Delete(1, 100, file, false)
	r.sim.RunUntil(2 * time.Minute)
	if b := r.net.Total().Bytes[netsim.FileWrite]; b != 0 {
		t.Errorf("deleted data was written back: %d bytes", b)
	}
	if saved := c.Cache.Stats().BytesSavedByDelete; saved != 8192 {
		t.Errorf("saved = %d", saved)
	}
	c.StopCleaner()
}

func TestFsyncWritesThrough(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	file := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, file, false, true, false)
	c.Write(h, 4096)
	c.Fsync(h)
	if b := r.net.Total().Bytes[netsim.FileWrite]; b != 4096 {
		t.Errorf("fsync shipped %d bytes", b)
	}
	c.Close(h)
}

func TestCrossClientRecallDeliversFreshData(t *testing.T) {
	r := newRig(t, 2)
	a, b := r.clients[0], r.clients[1]

	file := a.Create(1, 100, false, false)
	h, _, _ := a.Open(1, 100, file, false, true, false)
	a.Write(h, 5000)
	a.Close(h)

	// Client B opens before A's delayed write fires: the server recalls
	// A's dirty data.
	h2, _, err := b.Open(2, 200, file, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.srv.Stats().Recalls != 1 {
		t.Errorf("recalls = %d", r.srv.Stats().Recalls)
	}
	// A's dirty bytes traveled to the server during the recall.
	if bytes := r.net.Client(0).Bytes[netsim.FileWrite]; bytes != 5000 {
		t.Errorf("recalled bytes = %d", bytes)
	}
	got, _ := b.Read(h2, 5000)
	if got != 5000 {
		t.Errorf("B read %d bytes", got)
	}
	b.Close(h2)
}

func TestConcurrentWriteSharingBypassesCaches(t *testing.T) {
	r := newRig(t, 2)
	a, b := r.clients[0], r.clients[1]
	file := a.Create(1, 100, false, false)

	// Seed the file with data.
	h, _, _ := a.Open(1, 100, file, false, true, false)
	a.Write(h, 8192)
	a.Close(h)

	ha, _, _ := a.Open(1, 100, file, true, false, false)
	hb, _, err := b.Open(2, 200, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.srv.Stats().CWSEvents != 1 {
		t.Fatalf("CWS events = %d", r.srv.Stats().CWSEvents)
	}
	// B's writes pass through.
	b.Write(hb, 1000)
	if got := r.net.Client(1).Bytes[netsim.SharedWrite]; got != 1000 {
		t.Errorf("pass-through write bytes = %d", got)
	}
	// A's reads pass through too (its cache was disabled).
	a.Seek(ha, 0)
	a.Read(ha, 2000)
	if got := r.net.Client(0).Bytes[netsim.SharedRead]; got != 2000 {
		t.Errorf("pass-through read bytes = %d", got)
	}
	// Shared records carry FlagShared for the Section 5.5/5.6 simulators.
	shared := 0
	for _, rec := range r.recs {
		if rec.Flags&trace.FlagShared != 0 && (rec.Kind == trace.KindRead || rec.Kind == trace.KindWrite) {
			shared++
		}
	}
	if shared != 2 {
		t.Errorf("shared-flagged records = %d, want 2", shared)
	}

	a.Close(ha)
	b.Close(hb)
	// After all closes the file is cacheable again.
	h3, _, _ := a.Open(1, 100, file, true, false, false)
	a.Read(h3, 1000)
	a.Close(h3)
	if f := r.srv.Lookup(file); f.Uncacheable() {
		t.Error("file still uncacheable")
	}
}

func TestStaleVersionInvalidation(t *testing.T) {
	r := newRig(t, 2)
	a, b := r.clients[0], r.clients[1]
	file := a.Create(1, 100, false, false)

	// A writes and closes; data eventually reaches the server via fsync.
	h, _, _ := a.Open(1, 100, file, false, true, false)
	a.Write(h, 4096)
	a.Fsync(h)
	a.Close(h)

	// B reads the file and caches it.
	h2, _, _ := b.Open(2, 200, file, true, false, false)
	b.Read(h2, 4096)
	b.Close(h2)
	if b.Cache.NumBlocks() == 0 {
		t.Fatal("B cached nothing")
	}

	// A overwrites (fsync to bump the version at the server).
	h3, _, _ := a.Open(1, 100, file, false, true, false)
	a.Write(h3, 4096)
	a.Fsync(h3)
	a.Close(h3)

	// B re-opens: version mismatch flushes its stale copy and the read
	// goes to the server.
	before := r.net.Client(1).Bytes[netsim.FileRead]
	h4, _, _ := b.Open(2, 200, file, true, false, false)
	b.Read(h4, 4096)
	b.Close(h4)
	if got := r.net.Client(1).Bytes[netsim.FileRead] - before; got != 4096 {
		t.Errorf("B fetched %d bytes after invalidation, want 4096", got)
	}
	if r.srv.Stats().Invalids == 0 {
		t.Error("invalidation not counted")
	}
}

func TestDirectoryReadsBypassCache(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	dir := c.Create(1, 100, true, false)
	r.srv.Grow(dir, 2048, 0)
	h, _, _ := c.Open(1, 100, dir, true, false, false)
	c.Read(h, 2048)
	c.Read(h, 10) // past end: 0 bytes
	c.Close(h)
	if got := r.net.Client(0).Bytes[netsim.DirRead]; got != 2048 {
		t.Errorf("dir-read bytes = %d", got)
	}
	_, _, dirB := c.SharedBytes()
	if dirB != 2048 {
		t.Errorf("dirReadBytes = %d", dirB)
	}
	if c.Cache.NumBlocks() != 0 {
		t.Error("directory data entered the client cache")
	}
}

func TestSeekEmitsRepositionAndChargesRPC(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	file := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, file, false, true, false)
	c.Write(h, 10000)
	ops := r.net.Total().Ops[netsim.Control]
	c.Seek(h, 0)
	if r.net.Total().Ops[netsim.Control] != ops+1 {
		t.Error("seek did not charge a control RPC")
	}
	found := false
	for _, rec := range r.recs {
		if rec.Kind == trace.KindReposition && rec.Offset == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no reposition record")
	}
	c.Close(h)
}

func TestPagingGoesThroughCacheForCode(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	// Build an "executable" of 20 pages.
	exec := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, exec, false, true, false)
	c.Write(h, 20*4096)
	c.Fsync(h)
	c.Close(h)
	c.Cache.Invalidate(exec) // simulate a cold cache

	before := r.net.Client(0).Bytes[netsim.PagingRead]
	c.ExecProcess(500, exec, 10, 5, 2, false)
	pagedIn := r.net.Client(0).Bytes[netsim.PagingRead] - before
	if pagedIn != 15*4096 {
		t.Errorf("cold exec paged in %d bytes, want %d", pagedIn, 15*4096)
	}
	c.ExitProcess(500)

	// Second run: code pages retained, data pages still in file cache —
	// no new paging traffic at all.
	before = r.net.Client(0).Bytes[netsim.PagingRead]
	c.ExecProcess(501, exec, 10, 5, 2, false)
	if got := r.net.Client(0).Bytes[netsim.PagingRead] - before; got != 0 {
		t.Errorf("warm exec paged in %d bytes, want 0", got)
	}
	c.ExitProcess(501)
}

func TestBackingTrafficBypassesCache(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	exec := c.Create(1, 100, false, false)
	c.ExecProcess(600, exec, 1, 0, 2, true)
	c.TouchProcess(600, 4)
	c.EvictMigrated(600)
	if got := r.net.Client(0).Bytes[netsim.PagingWrite]; got != 6*4096 {
		t.Errorf("backing writes = %d, want %d (4 heap + 2 stack pages)", got, 6*4096)
	}
	if c.Cache.Stats().All.BytesWritten != 0 {
		t.Error("backing traffic entered the file cache")
	}
	c.ExitProcess(600)
}

func TestOpenUnknownFileErrors(t *testing.T) {
	r := newRig(t, 1)
	if _, _, err := r.clients[0].Open(1, 1, 424242, true, false, false); err == nil {
		t.Error("open of unknown file succeeded")
	}
}

func TestCloseUnknownHandleErrors(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.clients[0].Close(999); err == nil {
		t.Error("close of unknown handle succeeded")
	}
}

func TestReadOnWriteOnlyHandle(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	file := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, file, false, true, false)
	c.Write(h, 100)
	if n, _ := c.Read(h, 100); n != 0 {
		t.Errorf("read on write-only handle returned %d", n)
	}
	c.Close(h)
}

func TestMigratedFlagPropagates(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	file := c.Create(1, 100, false, true)
	h, _, _ := c.Open(1, 100, file, false, true, true)
	c.Write(h, 4096)
	c.Close(h)
	for _, rec := range r.recs {
		if !rec.IsMigrated() {
			t.Errorf("record %v lacks migrated flag", rec.Kind)
		}
	}
	if c.Cache.Stats().Migrated.BytesWritten != 4096 {
		t.Error("migrated bytes not attributed in cache counters")
	}
}

func TestTruncateDropsCachedData(t *testing.T) {
	r := newRig(t, 1)
	c := r.clients[0]
	file := c.Create(1, 100, false, false)
	h, _, _ := c.Open(1, 100, file, false, true, false)
	c.Write(h, 8192)
	c.Close(h)
	c.Truncate(1, 100, file, false)
	if f := r.srv.Lookup(file); f.Size != 0 {
		t.Errorf("size after truncate = %d", f.Size)
	}
	if c.Cache.DirtyBytes() != 0 {
		t.Errorf("dirty bytes after truncate = %d", c.Cache.DirtyBytes())
	}
	if r.srv.Stats().Truncates != 1 {
		t.Error("truncate not counted")
	}
}

func TestHandleIDsUniqueAcrossClients(t *testing.T) {
	r := newRig(t, 2)
	file := r.clients[0].Create(1, 100, false, false)
	h0, _, _ := r.clients[0].Open(1, 100, file, true, false, false)
	h1, _, _ := r.clients[1].Open(2, 200, file, true, false, false)
	if h0 == h1 {
		t.Error("handle collision across clients")
	}
	r.clients[0].Close(h0)
	r.clients[1].Close(h1)
}
