package consistency

import "time"

// Algorithms compared by the Section 5.6 simulator.
const (
	AlgSprite   = iota // caching disabled for the whole sharing episode
	AlgModified        // cacheable again as soon as concurrent sharing ends
	AlgToken           // read/write tokens with recall (Locus/Echo/DEcorum)
	NumAlgs
)

// AlgNames are the display names for the three schemes.
var AlgNames = [NumAlgs]string{"sprite", "modified-sprite", "token"}

// BlockSize is the cache block size used by the simulated caches.
const BlockSize = 4096

// writebackDelay mirrors Sprite's 30-second delayed-write policy, which
// the paper's simulator included.
const writebackDelay = 30 * time.Second

// Overhead is the Table 12 result: per-algorithm bytes transferred and
// remote procedure calls, normalized by what the applications actually
// requested on write-shared files.
type Overhead struct {
	AppBytes int64 // bytes requested by applications during sharing
	AppOps   int64 // read and write events during sharing
	Bytes    [NumAlgs]int64
	RPCs     [NumAlgs]int64
}

// ByteRatio returns bytes transferred by algorithm a divided by
// application bytes (the paper's second column; 1.0 for Sprite by
// construction).
func (o *Overhead) ByteRatio(a int) float64 {
	if o.AppBytes == 0 {
		return 0
	}
	return float64(o.Bytes[a]) / float64(o.AppBytes)
}

// RPCRatio returns RPCs issued by algorithm a divided by application
// read/write events (the paper's third column).
func (o *Overhead) RPCRatio(a int) float64 {
	if o.AppOps == 0 {
		return 0
	}
	return float64(o.RPCs[a]) / float64(o.AppOps)
}

// blockRange returns the block indices touched by [off, off+n).
func blockRange(off, n int64) (first, last int64) {
	if n <= 0 {
		return 0, -1
	}
	return off / BlockSize, (off + n - 1) / BlockSize
}

// clientCache is the simulator's infinitely large per-(client,file) cache.
type clientCache struct {
	valid   map[int64]bool
	dirtyAt map[int64]time.Duration
}

func newClientCache() *clientCache {
	return &clientCache{valid: make(map[int64]bool), dirtyAt: make(map[int64]time.Duration)}
}

// flush writes all dirty blocks back, charging bytes and one piggy-backed
// RPC per block, and returns how many blocks were flushed.
func (c *clientCache) flush(o *Overhead, alg int) int {
	n := 0
	for b := range c.dirtyAt {
		delete(c.dirtyAt, b)
		o.Bytes[alg] += BlockSize
		o.RPCs[alg]++
		n++
	}
	return n
}

// expire writes back blocks dirty longer than the delayed-write interval.
func (c *clientCache) expire(now time.Duration, o *Overhead, alg int) {
	for b, at := range c.dirtyAt {
		if now-at >= writebackDelay {
			delete(c.dirtyAt, b)
			o.Bytes[alg] += BlockSize
			o.RPCs[alg]++
		}
	}
}

func (c *clientCache) invalidate() {
	c.valid = make(map[int64]bool)
	// Dirty blocks are flushed by the caller before invalidation.
}

// fileSim carries per-file state for the modified-Sprite and token schemes.
type fileSim struct {
	// open bookkeeping (shared by all algorithms).
	readers map[int32]int
	writers map[int32]int

	// modified-Sprite caches, keyed by client.
	mod map[int32]*clientCache

	// token state.
	tok        map[int32]*clientCache
	writeTok   int32 // client holding the write token, or -1
	readTok    map[int32]bool
	lastWriter int32 // for invalidation on token transfer
}

func newFileSim() *fileSim {
	return &fileSim{
		readers:  make(map[int32]int),
		writers:  make(map[int32]int),
		mod:      make(map[int32]*clientCache),
		tok:      make(map[int32]*clientCache),
		writeTok: -1,
		readTok:  make(map[int32]bool),
	}
}

func (f *fileSim) openers() int {
	n := len(f.readers)
	for c := range f.writers {
		if f.readers[c] == 0 {
			n++
		}
	}
	return n
}

// cwsActive reports instantaneous concurrent write-sharing.
func (f *fileSim) cwsActive() bool {
	return f.openers() >= 2 && len(f.writers) >= 1
}

func (f *fileSim) modCache(client int32) *clientCache {
	c := f.mod[client]
	if c == nil {
		c = newClientCache()
		f.mod[client] = c
	}
	return c
}

func (f *fileSim) tokCache(client int32) *clientCache {
	c := f.tok[client]
	if c == nil {
		c = newClientCache()
		f.tok[client] = c
	}
	return c
}

// SimulateOverhead replays the write-shared accesses under the three
// consistency schemes. Only events logged during concurrent write-sharing
// (Shared flag) are accounted — exactly the accesses the paper's
// simulator saw — so the Sprite scheme transfers exactly the application
// bytes and issues exactly one RPC per event, and the other two schemes
// are measured against that same window. Caches are infinitely large and
// blocks leave them only through consistency actions, per the paper.
func SimulateOverhead(st SharedTrace) Overhead {
	var o Overhead
	files := make(map[uint64]*fileSim)
	get := func(id uint64) *fileSim {
		f := files[id]
		if f == nil {
			f = newFileSim()
			files[id] = f
		}
		return f
	}

	for _, ev := range st.Events {
		f := get(ev.File)
		// Expire delayed writes that have come due.
		for _, c := range f.mod {
			c.expire(ev.Time, &o, AlgModified)
		}
		for _, c := range f.tok {
			c.expire(ev.Time, &o, AlgToken)
		}

		switch ev.Kind {
		case EvOpen:
			if ev.Write {
				f.writers[ev.Client]++
			} else {
				f.readers[ev.Client]++
			}
		case EvClose:
			m := f.readers
			if ev.Write {
				m = f.writers
			}
			if m[ev.Client] > 0 {
				m[ev.Client]--
				if m[ev.Client] == 0 {
					delete(m, ev.Client)
				}
			}
		case EvRead:
			if !ev.Shared {
				continue
			}
			o.AppBytes += ev.Bytes
			o.AppOps++
			// Sprite: pass-through.
			o.Bytes[AlgSprite] += ev.Bytes
			o.RPCs[AlgSprite]++
			simModified(f, &o, ev, false)
			simToken(f, &o, ev, false)
		case EvWrite:
			if !ev.Shared {
				continue
			}
			o.AppBytes += ev.Bytes
			o.AppOps++
			o.Bytes[AlgSprite] += ev.Bytes
			o.RPCs[AlgSprite]++
			simModified(f, &o, ev, true)
			simToken(f, &o, ev, true)
		}
	}
	// Final flush: data dirty at trace end would be written eventually.
	for _, f := range files {
		for _, c := range f.mod {
			c.flush(&o, AlgModified)
		}
		for _, c := range f.tok {
			c.flush(&o, AlgToken)
		}
	}
	return o
}

// simModified: like Sprite, but the file is cacheable whenever concurrent
// write-sharing is not *instantaneously* active.
func simModified(f *fileSim, o *Overhead, ev Event, isWrite bool) {
	if f.cwsActive() {
		// Pass-through, and every client's cached copy becomes stale on a
		// write (flush dirty first, then invalidate).
		o.Bytes[AlgModified] += ev.Bytes
		o.RPCs[AlgModified]++
		if isWrite {
			for _, c := range f.mod {
				c.flush(o, AlgModified)
				c.invalidate()
			}
		}
		return
	}
	cacheOp(f.modCache(ev.Client), o, AlgModified, ev, isWrite)
	if isWrite {
		// Other clients' copies of the written blocks are now stale.
		first, last := blockRange(ev.Offset, ev.Bytes)
		for cl, c := range f.mod {
			if cl == ev.Client {
				continue
			}
			for b := first; b <= last; b++ {
				delete(c.valid, b)
			}
		}
	}
}

// simToken: read/write tokens with piggy-backed recalls.
func simToken(f *fileSim, o *Overhead, ev Event, isWrite bool) {
	cl := ev.Client
	if isWrite {
		if f.writeTok != cl {
			// Acquire the write token: one request RPC; recalls are
			// piggy-backed onto it, but each recalled client costs one
			// callback RPC (carrying its dirty data when any).
			o.RPCs[AlgToken]++
			if f.writeTok >= 0 {
				o.RPCs[AlgToken]++
				f.tokCache(f.writeTok).flush(o, AlgToken)
			}
			for r := range f.readTok {
				if r != cl {
					o.RPCs[AlgToken]++
				}
				delete(f.readTok, r)
			}
			// Everyone else's cache is stale once this client writes.
			for other, c := range f.tok {
				if other != cl {
					c.invalidate()
				}
			}
			f.writeTok = cl
		}
	} else {
		hasToken := f.writeTok == cl || f.readTok[cl]
		if !hasToken {
			o.RPCs[AlgToken]++ // token request
			if f.writeTok >= 0 && f.writeTok != cl {
				// Recall the write token: holder flushes and downgrades.
				o.RPCs[AlgToken]++
				f.tokCache(f.writeTok).flush(o, AlgToken)
				f.readTok[f.writeTok] = true
				f.writeTok = -1
			}
			f.readTok[cl] = true
		}
	}
	cacheOp(f.tokCache(cl), o, AlgToken, ev, isWrite)
}

// cacheOp applies a read or write to a simulated cache, charging block
// fetches for misses and write fetches for partial writes of non-resident
// blocks; writes dirty blocks under the 30-second delayed-write policy.
func cacheOp(c *clientCache, o *Overhead, alg int, ev Event, isWrite bool) {
	first, last := blockRange(ev.Offset, ev.Bytes)
	for b := first; b <= last; b++ {
		if isWrite {
			blockStart := b * BlockSize
			lo := ev.Offset - blockStart
			if lo < 0 {
				lo = 0
			}
			hi := ev.Offset + ev.Bytes - blockStart
			if hi > BlockSize {
				hi = BlockSize
			}
			partial := lo > 0 || hi < BlockSize
			if partial && !c.valid[b] {
				// Write fetch.
				o.Bytes[alg] += BlockSize
				o.RPCs[alg]++
			}
			c.valid[b] = true
			if _, dirty := c.dirtyAt[b]; !dirty {
				c.dirtyAt[b] = ev.Time
			}
		} else {
			if !c.valid[b] {
				o.Bytes[alg] += BlockSize
				o.RPCs[alg]++
				c.valid[b] = true
			}
		}
	}
}
