// Package shutdown is the shared signal-termination path for the
// command-line tools. Long simulations and live serving both need SIGINT /
// SIGTERM to mean "finish cleanly": flush profiles, write the partial
// metrics dump, print the report — not vanish mid-write.
//
// Two shapes are provided. Notify hands the signal channel to a command
// that drains itself (cmd/serve's soak loop selects on it). Guard is for
// commands whose main path is one long blocking computation (cmd/replay,
// cmd/experiments): registered cleanups run on the first signal, then the
// process exits with the conventional 128+signal status.
package shutdown

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Notify returns a channel that receives on SIGINT/SIGTERM and a stop
// function that uninstalls the handler. The channel is buffered so a
// signal arriving before the caller selects is not lost.
func Notify() (<-chan os.Signal, func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// Guard runs registered cleanups when the process is signalled. Cleanups
// run newest-first (like defers) in a dedicated goroutine while the main
// computation is still blocked wherever the signal caught it, so they must
// only touch state that is safe to read concurrently — profile flushing
// (prof.Session.Stop) and snapshot writes qualify; in-progress simulator
// state does not. After the cleanups the process exits 128+signum.
type Guard struct {
	mu       sync.Mutex
	cleanups []func()
	stop     func()
}

// NewGuard installs the handler. Pair with Close on the normal exit path.
func NewGuard() *Guard {
	g := &Guard{}
	ch, stop := Notify()
	g.stop = stop
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		g.mu.Lock()
		cleanups := g.cleanups
		g.cleanups = nil
		g.mu.Unlock()
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
		code := 128 + int(syscall.SIGINT)
		if s, isSys := sig.(syscall.Signal); isSys {
			code = 128 + int(s)
		}
		os.Exit(code)
	}()
	return g
}

// Add registers a cleanup to run if the process is signalled. Returns the
// guard for chaining.
func (g *Guard) Add(fn func()) *Guard {
	g.mu.Lock()
	g.cleanups = append(g.cleanups, fn)
	g.mu.Unlock()
	return g
}

// Close uninstalls the signal handler without running cleanups — the
// normal exit path's own defers take over from here.
func (g *Guard) Close() {
	g.mu.Lock()
	g.cleanups = nil
	g.mu.Unlock()
	g.stop()
}
