// Command metricsdoc generates docs/METRICS.md from the metric registry:
// it constructs every subsystem once, collects the families they register
// (name, kind, unit, labels, help), and renders the reference. Because the
// document is generated from the same registrations the simulators run
// with, it cannot describe a counter that does not exist — and -check
// (wired into `make check`) fails the build when the committed file drifts
// from the code.
//
// Usage:
//
//	metricsdoc                     # rewrite docs/METRICS.md
//	metricsdoc -out -              # print to stdout
//	metricsdoc -check              # exit 1 if docs/METRICS.md is stale
package main

import (
	"flag"
	"fmt"
	"os"

	"spritefs/internal/core"
)

func main() {
	var (
		out   = flag.String("out", "docs/METRICS.md", "output file ('-' = stdout)")
		check = flag.Bool("check", false, "verify the file matches the registry instead of writing")
	)
	flag.Parse()

	doc := core.MetricsDoc()
	if *check {
		have, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricsdoc: %v (run `go run ./cmd/metricsdoc` to generate)\n", err)
			os.Exit(1)
		}
		if string(have) != doc {
			fmt.Fprintf(os.Stderr, "metricsdoc: %s is stale; run `go run ./cmd/metricsdoc` to regenerate\n", *out)
			os.Exit(1)
		}
		fmt.Printf("metricsdoc: %s is current\n", *out)
		return
	}
	if *out == "-" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "metricsdoc:", err)
		os.Exit(1)
	}
	fmt.Printf("metricsdoc: wrote %s\n", *out)
}
