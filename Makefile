# Convenience targets for the spritefs reproduction.

GO ?= go

.PHONY: all check build vet pkgdoc metricscheck docs test race faults faultsmoke scalecheck allocscheck soaksmoke importcheck bench benchcheck benchbaseline benchall profile experiments experiments-diff section4 section5 clean

all: check

# The gate every change must pass: compile, static checks, package-doc
# and metrics-doc drift gates, tests, the race detector over the full
# module, the fault-injection suite (twice under race, plus a
# randomized-schedule smoke with a fixed seed), the parallel-executor
# byte-identity gate, the steady-state allocation gates, the
# live-service smoke (a real 5-second wall-clock soak with a mid-run
# /metrics scrape), the trace-import gate (golden imports, round-trips
# and worker-invariant replay of foreign traces, plus the runnable
# pipeline example), and the perf-regression gate against the committed
# benchmark baselines.
check: build vet pkgdoc metricscheck test race faults faultsmoke scalecheck allocscheck soaksmoke importcheck benchcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@if $(GO) vet -vettool=$$(command -v shadow) ./internal/faults/... 2>/dev/null; then \
		echo "shadow: ok"; \
	else \
		echo "shadow: tool not installed, skipping"; \
	fi

# Every package must carry a package comment (go doc has something to
# say about every import path in the module).
pkgdoc:
	@missing=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...); \
	if [ -n "$$missing" ]; then \
		echo "packages missing a package comment:"; \
		echo "$$missing"; \
		exit 1; \
	fi; \
	echo "pkgdoc: every package documented"

# docs/METRICS.md is generated from the metric registry; fail if it has
# drifted from the code (regenerate with `go run ./cmd/metricsdoc`).
metricscheck:
	$(GO) run ./cmd/metricsdoc -check

# Regenerate the generated documentation and vet the hand-written kind:
# rewrite docs/METRICS.md from the registry, then require every package
# to carry a package comment.
docs: pkgdoc
	$(GO) run ./cmd/metricsdoc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The crash-recovery subsystem, twice under the race detector: the fault
# hook and recovery sweeps are exactly the code where a latent data race
# would corrupt the determinism guarantees.
faults:
	$(GO) test -race -count=2 ./internal/faults/...

# Quick randomized-schedule audit with a pinned seed (15 schedules in
# -short mode; the full 100-schedule run happens under `make test`).
faultsmoke:
	$(GO) test -short -run TestFaultSchedules ./internal/faults/check -faultseed 7

# The parallel-vs-sequential byte-identity gate: the channel-clock
# executor must produce identical reports and metric dumps at 1, 4 and 8
# workers, under the race detector (TestParallelMatchesSequential runs
# all three worker counts as subtests, and TestDetermFuzzSmoke replays
# the fuzz corpus's smallest seed at the same worker counts).
scalecheck:
	$(GO) test -race -run 'TestParallelMatchesSequential|TestDeterministicAcrossRuns|TestDetermFuzzSmoke' -count=1 ./internal/scale

# The allocation-regression gate: testing.AllocsPerRun pins the
# scheduler's After/Every steady state, the netsim RPC round-trip, the
# fscache cleaner sweep (dirty-set walk plus scratch-buffer reuse) and
# the metrics labeled-counter increment-and-sum path at exactly zero
# allocations per operation, and the scale pool tests pin the executor's
# message recycling (a warm-seeded run allocates zero messages), which
# is what keeps the benchmarks' allocs/op at steady state.
allocscheck:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/sim ./internal/netsim ./internal/fscache ./internal/metrics
	$(GO) test -run 'TestMessagePoolSteadyState|TestDrainMessagePoolsEmpties' -count=1 ./internal/scale

# The live-service gate: a 2-second in-package mini-soak under the race
# detector (the wall-clock dispatcher, agent fleet and live exporter are
# exactly the concurrent code), then a real 5-second `serve` run — 8
# agents, a mid-soak /metrics scrape, clean exit, non-empty report.
soaksmoke:
	$(GO) test -race -run TestLiveSoakShort -count=1 ./internal/live
	$(GO) test -run TestSoakSmoke -count=1 ./cmd/serve

# The trace-import gate: the golden import (a committed text rendering
# of the sample CSV pipeline), the worker-invariance acceptance test
# (imported-then-modernized traces replay byte-identically at 1/2/4/8
# workers), the importer determinism tests, a pass over the fuzz seed
# corpora, and the runnable end-to-end example.
importcheck:
	$(GO) test -run 'TestImportGolden|TestImportedTrace|TestImportCSVDeterministic|TestModernizeDeterministic' -count=1 ./internal/traceio
	$(GO) test -run '^$$' -fuzz FuzzImportCSV -fuzztime 1x ./internal/traceio
	$(GO) test -run '^$$' -fuzz FuzzImportStrace -fuzztime 1x ./internal/traceio
	$(GO) run ./examples/trace-import >/dev/null
	@echo "importcheck: ok"

# The scale and recovery macro benchmarks, with machine-readable output:
# BENCH_scale.json records name, ns/op, allocs, clients, shards and
# workers per benchmark plus two derived wall-clock speedups — the
# shards=8-over-shards=1 sharding payoff and the workers=8-over-workers=1
# multi-core payoff of the channel-clock executor — and, via the
# BenchmarkWANScale sites sweep (sites=/segs= labels), the cost of
# hierarchical tier pricing vs the flat topology — and a vs_baseline
# section against the committed BENCH_scale_baseline.json. Each run also
# appends one line to the BENCH_history.jsonl perf log. The second block
# runs the simulation-core micro benchmarks and the sharded-replay macro
# benchmark and writes BENCH_simcore.json, including a vs_baseline
# section against the committed pre-optimization numbers.
bench:
	$(GO) test -bench='BenchmarkScaleEngine|BenchmarkScaleWorkers|BenchmarkWANScale$$|BenchmarkScaleBarrier|BenchmarkRecoveryStorm' -benchmem -benchtime=1x -count=3 -run '^$$' \
		./internal/scale ./internal/faults/check | tee bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -baseline BENCH_scale_baseline.json -history BENCH_history.jsonl -o BENCH_scale.json
	$(GO) test -bench='BenchmarkEventThroughput|BenchmarkHeapChurn|BenchmarkSimCore' -benchmem -run '^$$' \
		./internal/sim | tee bench_simcore_output.txt
	$(GO) test -bench=BenchmarkShardedReplay -benchmem -benchtime=1x -run '^$$' \
		./internal/replay | tee -a bench_simcore_output.txt
	$(GO) run ./cmd/benchjson -in bench_simcore_output.txt -baseline BENCH_simcore_baseline.json -o BENCH_simcore.json
	$(GO) run ./cmd/serve -clients 8 -rate 100 -duration 5s -bench-json BENCH_live.json

# Shared recipe for the perf-regression gate: a quick benchstat-style
# sweep (median of -count runs) over the executor-dominated scale
# benchmark and the simulation-core micro benchmarks.
define BENCHCHECK_RUN
	$(GO) test -bench='BenchmarkScaleBarrier|BenchmarkWANScaleQuick' -benchmem -benchtime=3x -count=5 -run '^$$' \
		./internal/scale | tee benchcheck_output.txt
	$(GO) test -bench='BenchmarkEventThroughput|BenchmarkHeapChurn|BenchmarkSimCore$$' -benchmem -benchtime=0.3s -count=3 -run '^$$' \
		./internal/sim | tee -a benchcheck_output.txt
endef

# The perf-regression gate: rerun the quick benchmark sweep and fail if
# any median ns/op regresses more than 15% against the committed
# BENCH_check_baseline.json, or any allocs/op grows more than 25% (the
# -allocgate ratio is baseline-over-current; allocation counts are
# deterministic at steady state, so the alloc gate has no significance
# test). Each run appends a line to BENCH_history.jsonl. Refresh the
# baseline with `make benchbaseline` after an intentional perf change
# (on the machine that enforces the gate — baselines are host-specific).
benchcheck:
	$(BENCHCHECK_RUN)
	$(GO) run ./cmd/benchjson -in benchcheck_output.txt -baseline BENCH_check_baseline.json -gate 0.85 -allocgate 0.8 -history BENCH_history.jsonl -o BENCH_check.json

# Re-baseline the perf gate from the current tree.
benchbaseline:
	$(BENCHCHECK_RUN)
	$(GO) run ./cmd/benchjson -in benchcheck_output.txt -o BENCH_check_baseline.json

# One iteration of every table/figure benchmark (reduced scale).
benchall:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# CPU and heap profiles of the execution-dominated macro benchmark, plus
# pprof -top snapshots, under profiles/ — the raw material for the
# docs/PERFORMANCE.md hot-path tables. The profile run uses the largest
# single-shard-free configuration (clients=1000/shards=8) so the sweep,
# workload and metrics hot paths dominate rather than the coordinator.
profile:
	mkdir -p profiles
	$(GO) test -bench='BenchmarkScaleEngine/clients=1000/shards=8$$' -benchtime=1x -run '^$$' \
		-cpuprofile profiles/scale_cpu.out -memprofile profiles/scale_mem.out \
		-o profiles/scale.test ./internal/scale
	$(GO) tool pprof -top -nodecount 25 profiles/scale.test profiles/scale_cpu.out | tee profiles/scale_cpu_top.txt
	$(GO) tool pprof -top -nodecount 25 -sample_index=alloc_objects profiles/scale.test profiles/scale_mem.out | tee profiles/scale_alloc_top.txt

# Full-scale regeneration of the paper's evaluation, then a diff against
# the committed results: determinism means any difference is a real
# behaviour change, not noise.
experiments: section4 section5 experiments-diff

experiments-diff:
	@git --no-pager diff --exit-code results_section4.txt results_section5.txt \
		&& echo "experiments: results match the committed files" \
		|| { echo "experiments: results drifted from the committed files (see diff above)"; exit 1; }

section4:
	$(GO) run ./cmd/experiments -exp section4 -hours 24 | tee results_section4.txt

section5:
	$(GO) run ./cmd/experiments -exp section5 -days 2 | tee results_section5.txt

clean:
	rm -f results_section4.txt results_section5.txt test_output.txt bench_output.txt bench_simcore_output.txt benchcheck_output.txt BENCH_check.json
