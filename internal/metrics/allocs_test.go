package metrics

import (
	"testing"

	"spritefs/internal/stats"
)

// The handle-based registration contract: once a counter is registered
// through a Var form, incrementing it is a plain field bump and reading
// it back through the registry's aggregation paths allocates nothing.
// `make allocscheck` runs this gate.

func TestLabeledCounterIncrementZeroAlloc(t *testing.T) {
	r := New()
	d := Desc{Name: "test_ops_total", Unit: "ops", Help: "h", Kind: Counter}
	var counters [8]int64
	var ages [8]stats.Welford
	for i := range counters {
		ls := Labels{L("client", string(rune('a'+i)))}
		r.IntVar(d, ls, &counters[i])
		r.HistVar(Desc{Name: "test_age", Help: "h"}, ls, &ages[i])
	}
	sel := L("client", "a")

	allocs := testing.AllocsPerRun(1000, func() {
		for i := range counters {
			counters[i]++ // the hot path the registry must never touch
			ages[i].Add(float64(i))
		}
		if r.SumInt("test_ops_total") == 0 {
			t.Fatal("sum is zero after increments")
		}
		if r.SumInt("test_ops_total", sel) == 0 {
			t.Fatal("selected sum is zero after increments")
		}
	})
	if allocs != 0 {
		t.Fatalf("increment+SumInt allocated %.1f/op, want 0", allocs)
	}
}
