package analysis

import (
	"time"

	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

// Access classes of Table 3.
const (
	ReadOnly = iota
	WriteOnly
	ReadWrite
	NumClasses
)

// ClassNames are the Table 3 row labels.
var ClassNames = [NumClasses]string{"read-only", "write-only", "read-write"}

// Sequentiality buckets of Table 3.
const (
	WholeFile = iota
	OtherSeq
	Random
	NumSeqs
)

// SeqNames are the Table 3 column labels.
var SeqNames = [NumSeqs]string{"whole-file", "other-sequential", "random"}

// AccessPatterns reproduces Table 3 and Figures 1-3 in one pass. An access
// is one open-use-close episode of a file; its class reflects actual usage
// (read and/or written), not the open mode, exactly as the paper defines.
type AccessPatterns struct {
	// Table 3.
	Counts [NumClasses][NumSeqs]int64
	Bytes  [NumClasses][NumSeqs]int64

	// Figure 1: sequential run lengths, weighted by runs and by bytes.
	RunsByCount *stats.Hist
	RunsByBytes *stats.Hist

	// Figure 2: file size at close, weighted by accesses and by bytes
	// transferred during the access.
	SizeByFiles *stats.Hist
	SizeByBytes *stats.Hist

	// Figure 3: open durations in seconds.
	OpenTimes *stats.Hist

	open map[uint64]*openState
}

type openState struct {
	openedAt     time.Duration
	bytesRead    int64
	bytesWritten int64

	runs       int   // completed sequential runs (with data)
	runStart   int64 // offset where the current run began
	runBytes   int64
	pos        int64 // expected next sequential offset
	inRun      bool
	wholeFrom0 bool // the first run started at offset 0
}

// NewAccessPatterns returns the combined Table 3 / Figures 1-3 analyzer.
func NewAccessPatterns() *AccessPatterns {
	return &AccessPatterns{
		RunsByCount: stats.NewHist(1, 100e6, 8),
		RunsByBytes: stats.NewHist(1, 100e6, 8),
		SizeByFiles: stats.NewHist(1, 100e6, 8),
		SizeByBytes: stats.NewHist(1, 100e6, 8),
		OpenTimes:   stats.NewHist(0.001, 10000, 8),
		open:        make(map[uint64]*openState),
	}
}

func (a *AccessPatterns) endRun(st *openState) {
	if !st.inRun || st.runBytes == 0 {
		st.inRun = false
		return
	}
	a.RunsByCount.Add1(float64(st.runBytes))
	a.RunsByBytes.Add(float64(st.runBytes), float64(st.runBytes))
	if st.runs == 0 && st.runStart == 0 {
		st.wholeFrom0 = true
	}
	st.runs++
	st.inRun = false
	st.runBytes = 0
}

// Observe implements Sink.
func (a *AccessPatterns) Observe(r *trace.Record) {
	if r.IsDirectory() || r.Handle == 0 {
		return
	}
	switch r.Kind {
	case trace.KindOpen:
		a.open[r.Handle] = &openState{openedAt: r.Time}
	case trace.KindRead, trace.KindWrite:
		st := a.open[r.Handle]
		if st == nil || r.Length <= 0 {
			return
		}
		if st.inRun && r.Offset != st.pos {
			a.endRun(st)
		}
		if !st.inRun {
			st.inRun = true
			st.runStart = r.Offset
		}
		st.runBytes += r.Length
		st.pos = r.Offset + r.Length
		if r.Kind == trace.KindRead {
			st.bytesRead += r.Length
		} else {
			st.bytesWritten += r.Length
		}
	case trace.KindReposition:
		st := a.open[r.Handle]
		if st == nil {
			return
		}
		a.endRun(st)
		st.pos = r.Offset
	case trace.KindClose:
		st := a.open[r.Handle]
		if st == nil {
			return
		}
		delete(a.open, r.Handle)
		a.closeAccess(st, r)
	}
}

func (a *AccessPatterns) closeAccess(st *openState, r *trace.Record) {
	// Figure 3 includes every open-close episode.
	a.OpenTimes.Add1((r.Time - st.openedAt).Seconds())

	total := st.bytesRead + st.bytesWritten
	if total == 0 {
		return // no data transferred: not an access in the Table 3 sense
	}
	// The run in progress at close completes. Whole-file detection needs
	// the run count before and after: a whole-file access is exactly one
	// run, starting at byte 0, covering the file's size at close.
	a.endRun(st)

	var class int
	switch {
	case st.bytesRead > 0 && st.bytesWritten > 0:
		class = ReadWrite
	case st.bytesRead > 0:
		class = ReadOnly
	default:
		class = WriteOnly
	}
	var seq int
	switch {
	case st.runs > 1:
		seq = Random
	case st.wholeFrom0 && total >= r.Size && r.Size > 0:
		seq = WholeFile
	default:
		seq = OtherSeq
	}
	a.Counts[class][seq]++
	a.Bytes[class][seq] += total

	// Figure 2.
	size := r.Size
	if size <= 0 {
		size = total
	}
	a.SizeByFiles.Add1(float64(size))
	a.SizeByBytes.Add(float64(size), float64(total))
}

// Finish implements Sink. Accesses still open at trace end are discarded,
// as the paper's analysis did.
func (a *AccessPatterns) Finish() { a.open = make(map[uint64]*openState) }

// ClassPct returns the percentage of accesses (and of bytes) in the given
// class — Table 3's first two columns.
func (a *AccessPatterns) ClassPct(class int) (accesses, bytes float64) {
	var totalN, totalB, n, b int64
	for c := 0; c < NumClasses; c++ {
		for s := 0; s < NumSeqs; s++ {
			totalN += a.Counts[c][s]
			totalB += a.Bytes[c][s]
			if c == class {
				n += a.Counts[c][s]
				b += a.Bytes[c][s]
			}
		}
	}
	return stats.Ratio(n, totalN), stats.Ratio(b, totalB)
}

// SeqPct returns, within a class, the percentage of accesses and bytes in
// the given sequentiality bucket — Table 3's last two columns.
func (a *AccessPatterns) SeqPct(class, seq int) (accesses, bytes float64) {
	var totalN, totalB int64
	for s := 0; s < NumSeqs; s++ {
		totalN += a.Counts[class][s]
		totalB += a.Bytes[class][s]
	}
	return stats.Ratio(a.Counts[class][seq], totalN), stats.Ratio(a.Bytes[class][seq], totalB)
}
