// Crash and recovery support: the operations the fault-injection layer
// (internal/faults) needs from a block cache. A cache is volatile memory —
// a workstation or server crash discards every resident block, and dirty
// bytes that never reached stable storage are the "data at risk" the
// paper's 30-second delayed-write policy bounds. DiscardAll measures that
// loss; RecoverFlush is the client half of the Sprite recovery protocol
// (replay dirty blocks to a restarted server); CheckInvariants is the
// structural self-audit the fault-schedule harness runs after every
// injected fault sequence.

package fscache

import (
	"fmt"
	"slices"
	"time"
)

// CrashLoss describes what a cache crash destroyed.
type CrashLoss struct {
	Blocks      int
	DirtyBlocks int
	DirtyBytes  int64
	// MaxDirtyAge is the longest any lost dirty block had been dirty.
	// Under a working delayed-write daemon it is bounded by the writeback
	// delay plus one cleaner period — the paper's "at most 30 seconds of
	// work" reliability claim, made checkable.
	MaxDirtyAge time.Duration
}

// DiscardAll models a crash: every resident block vanishes without
// writeback and the loss is measured. Counters survive (they model the
// measurement infrastructure, not the crashed memory).
func (c *Cache) DiscardAll(now time.Duration) CrashLoss {
	var loss CrashLoss
	for s := c.lruFront; s >= 0; s = c.blocks[s].next {
		b := &c.blocks[s]
		loss.Blocks++
		if b.dirty {
			loss.DirtyBlocks++
			loss.DirtyBytes += b.dirtyHi
			if age := now - b.dirtyAt; age > loss.MaxDirtyAge {
				loss.MaxDirtyAge = age
			}
		}
	}
	c.blocks = c.blocks[:0]
	c.freeB = -1
	c.lruFront = -1
	c.lruBack = -1
	// The file indexes still in the map hold stale slots; drop them. (The
	// fiFree pool holds only emptied, all-zero indexes and stays usable.)
	c.files = make(map[uint64]*fileIndex)
	clear(c.dirtyFiles)
	c.nblocks = 0
	c.ndirty = 0
	c.dirtyBytes = 0
	return loss
}

// DirtyFiles returns the ids of all files with at least one dirty block,
// in ascending order so recovery replay is deterministic. The result is
// freshly allocated (recovery holds it across per-file flushes).
func (c *Cache) DirtyFiles() []uint64 {
	out := make([]uint64, 0, len(c.dirtyFiles))
	for f := range c.dirtyFiles {
		out = append(out, f)
	}
	slices.Sort(out)
	return out
}

// RecoverFlush returns all dirty blocks of file for replay to a restarted
// server (the client half of Sprite's recovery protocol). Blocks become
// clean; the writebacks are tagged CleanRecover so recovery traffic is
// distinguishable from ordinary delayed writes in Table 9.
func (c *Cache) RecoverFlush(file uint64, now time.Duration) []Writeback {
	return c.flushFile(file, CleanRecover, now)
}

// CheckInvariants audits the cache's internal accounting: block counts,
// dirty counts and dirty bytes must match a full recount, the LRU list
// must track the block map, and per-block watermarks must be ordered.
// It returns the first inconsistency found, or nil. The fault harness
// calls it after every injected fault sequence.
func (c *Cache) CheckInvariants() error {
	var nblocks, ndirty, ndirtyFiles int
	var dirtyBytes int64
	for f, fi := range c.files {
		fn, fd := 0, 0
		audit := func(idx int64, s int32) error {
			fn++
			nblocks++
			b := &c.blocks[s]
			if b.file != f || b.index != idx {
				return fmt.Errorf("fscache: block keyed (%#x,%d) holds (%#x,%d)", f, idx, b.file, b.index)
			}
			if b.validHi < 0 || b.validHi > BlockSize {
				return fmt.Errorf("fscache: block (%#x,%d) validHi %d out of range", f, idx, b.validHi)
			}
			if b.dirtyHi < 0 || b.dirtyHi > b.validHi {
				return fmt.Errorf("fscache: block (%#x,%d) dirtyHi %d exceeds validHi %d", f, idx, b.dirtyHi, b.validHi)
			}
			if b.dirty {
				ndirty++
				fd++
				dirtyBytes += b.dirtyHi
				if b.dirtyHi == 0 {
					return fmt.Errorf("fscache: block (%#x,%d) dirty with zero dirtyHi", f, idx)
				}
			} else if b.dirtyHi != 0 {
				return fmt.Errorf("fscache: clean block (%#x,%d) has dirtyHi %d", f, idx, b.dirtyHi)
			}
			return nil
		}
		for idx, v := range fi.dense {
			if v != 0 {
				if err := audit(int64(idx), v-1); err != nil {
					return err
				}
			}
		}
		for idx, s := range fi.sparse {
			if idx < fiDenseMax {
				return fmt.Errorf("fscache: sparse index holds small block index %d of file %#x", idx, f)
			}
			if err := audit(idx, s); err != nil {
				return err
			}
		}
		if fn != fi.n {
			return fmt.Errorf("fscache: file %#x index count %d, recount %d", f, fi.n, fn)
		}
		if fn == 0 {
			return fmt.Errorf("fscache: empty file index for %#x not released", f)
		}
		if fd != fi.dirty {
			return fmt.Errorf("fscache: file %#x dirty count %d, recount %d", f, fi.dirty, fd)
		}
		if _, in := c.dirtyFiles[f]; in != (fd > 0) {
			return fmt.Errorf("fscache: file %#x has %d dirty blocks but dirty-set membership %v", f, fd, in)
		}
		if fd > 0 {
			ndirtyFiles++
		}
	}
	if ndirtyFiles != len(c.dirtyFiles) {
		return fmt.Errorf("fscache: dirty-file set holds %d entries, recount %d", len(c.dirtyFiles), ndirtyFiles)
	}
	if nblocks != c.nblocks {
		return fmt.Errorf("fscache: nblocks %d, recount %d", c.nblocks, nblocks)
	}
	if ndirty != c.ndirty {
		return fmt.Errorf("fscache: ndirty %d, recount %d", c.ndirty, ndirty)
	}
	if dirtyBytes != c.dirtyBytes {
		return fmt.Errorf("fscache: dirtyBytes %d, recount %d", c.dirtyBytes, dirtyBytes)
	}
	lruLen := 0
	prev := int32(-1)
	for s := c.lruFront; s >= 0; s = c.blocks[s].next {
		if c.blocks[s].prev != prev {
			return fmt.Errorf("fscache: lru back-link broken at slot %d", s)
		}
		prev = s
		if lruLen++; lruLen > c.nblocks {
			return fmt.Errorf("fscache: lru holds more than the %d indexed blocks", c.nblocks)
		}
	}
	if prev != c.lruBack {
		return fmt.Errorf("fscache: lru tail is %d, walk ended at %d", c.lruBack, prev)
	}
	if lruLen != c.nblocks {
		return fmt.Errorf("fscache: lru holds %d blocks, index holds %d", lruLen, c.nblocks)
	}
	return nil
}
