// bsd-1985 measures the paper's headline claim instead of citing it: file
// throughput per active user grew by a factor of ~20 between the 1985 BSD
// study (0.40 KB/s over 10-minute intervals, VAX time-sharing) and the
// 1991 Sprite cluster (8.0 KB/s, personal workstations).
//
// The example runs a 1985-style community — a few 1-MIPS time-shared
// machines, 1985-sized files, no migration — and the 1991 community
// through the same Table 2 analysis and prints the growth factor.
//
//	go run ./examples/bsd-1985
package main

import (
	"fmt"
	"log"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/cluster"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

func measure(name string, p workload.Params, hours float64) *analysis.UserActivity {
	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	cfg.SamplePeriod = 0
	c := cluster.New(cfg)
	fmt.Printf("running the %s community (%d machines, %d+%d users, %.0f simulated hours)...\n",
		name, p.NumClients, p.DailyUsers, p.OccasionalUsers, hours)
	c.Run(time.Duration(hours * float64(time.Hour)))
	ua := analysis.NewUserActivity()
	if err := analysis.Run(trace.Merge(c.PerServerStreams()...), ua); err != nil {
		log.Fatal(err)
	}
	return ua
}

func main() {
	const hours = 6

	p91 := workload.Default(1985)
	p91.NumClients, p91.DailyUsers, p91.OccasionalUsers = 16, 12, 12
	sprite := measure("1991 Sprite", p91, hours)

	p85 := workload.BSD1985(1985)
	p85.DailyUsers, p85.OccasionalUsers = 12, 12
	bsd := measure("1985 BSD", p85, hours)

	fmt.Println("\nThroughput per active user, 10-minute intervals (Table 2's metric):")
	fmt.Printf("  1991 Sprite workstations:  %6.2f KB/s   (paper: 8.0)\n", sprite.TenMinAll.AvgThroughputKBs)
	fmt.Printf("  1985 BSD time-sharing:     %6.2f KB/s   (BSD study: 0.40)\n", bsd.TenMinAll.AvgThroughputKBs)
	if b := bsd.TenMinAll.AvgThroughputKBs; b > 0 {
		fmt.Printf("  growth factor:             %6.1fx       (paper: ~20x)\n",
			sprite.TenMinAll.AvgThroughputKBs/b)
	}
	fmt.Println("  (this is a reduced-scale run; the full 40-client campaign measures")
	fmt.Println("   8.2 KB/s for 1991 — see EXPERIMENTS.md — giving the paper's ~20x)")

	fmt.Println("\n10-second burst view:")
	fmt.Printf("  1991: %6.2f KB/s (paper: 47)   1985: %6.2f KB/s (BSD study: 1.5)\n",
		sprite.TenSecAll.AvgThroughputKBs, bsd.TenSecAll.AvgThroughputKBs)

	fmt.Println("\nThe paper's observation follows: computing power per user grew 200-500x,")
	fmt.Println("but file throughput only ~20x — users spent the new cycles on latency,")
	fmt.Println("not on more data. Burstiness, however, exploded (the migration column).")
}
