package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTextWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		r := sampleRecord(i)
		r.Kind = Kind(1 + i%(int(kindMax)-1))
		want = append(want, r)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 50 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewTextReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("text round trip mismatch")
	}
}

// Property: arbitrary records survive the text codec.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(ns int64, kindSel uint8, flags uint8, server int16, client, user, proc int32,
		file, handle uint64, offset, length, size int64) bool {
		if ns < 0 {
			ns = -ns
		}
		rec := Record{
			Time: time.Duration(ns), Kind: Kind(1 + kindSel%uint8(kindMax-1)),
			Flags: flags, Server: server, Client: client, User: user, Proc: proc,
			File: file, Handle: handle, Offset: offset, Length: length, Size: size,
		}
		var buf bytes.Buffer
		w, _ := NewTextWriter(&buf)
		if err := w.Write(&rec); err != nil {
			return false
		}
		w.Flush()
		r, err := NewTextReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := textHeader + "\n\n# a comment\n" +
		"1000\topen\t4\t0\t1\t2\t3\tff\t9\t0\t0\t100\n"
	r, err := NewTextReader(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindOpen || rec.File != 0xff || rec.Size != 100 {
		t.Errorf("parsed: %+v", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestTextReaderErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "not a header\n"},
	}
	for _, c := range cases {
		if _, err := NewTextReader(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	lineCases := []string{
		"1000\topen\t4\t0\t1\t2\t3\tff\t9\t0\t0",         // 11 fields
		"xx\topen\t4\t0\t1\t2\t3\tff\t9\t0\t0\t100",      // bad time
		"1000\tbogus\t4\t0\t1\t2\t3\tff\t9\t0\t0\t100",   // bad kind
		"1000\topen\t4\t0\t1\t2\t3\tzz\t9\t0\t0\t100",    // bad hex... zz invalid
		"1000\topen\tnine\t0\t1\t2\t3\tff\t9\t0\t0\t100", // bad flags
		"1000\topen\t4\t0\t1\t2\t3\tff\t9\t0\t0\ttwelve", // bad size
	}
	for i, line := range lineCases {
		r, err := NewTextReader(strings.NewReader(textHeader + "\n" + line + "\n"))
		if err != nil {
			t.Fatalf("case %d: header rejected: %v", i, err)
		}
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("case %d: bad line accepted (err=%v)", i, err)
		}
	}
}

func TestBinaryToTextConversion(t *testing.T) {
	// The pipeline a user would run to inspect a binary trace.
	var bin bytes.Buffer
	bw, _ := NewWriter(&bin)
	for i := 0; i < 20; i++ {
		r := sampleRecord(i)
		bw.Write(&r)
	}
	bw.Flush()

	br, _ := NewReader(&bin)
	var txt bytes.Buffer
	tw, _ := NewTextWriter(&txt)
	n := 0
	for {
		r, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tw.Write(&r)
		n++
	}
	tw.Flush()
	if n != 20 {
		t.Fatalf("converted %d records", n)
	}
	tr, _ := NewTextReader(&txt)
	got, err := Collect(tr)
	if err != nil || len(got) != 20 {
		t.Fatalf("reparse: %v, %d records", err, len(got))
	}
}
