package migrate

import (
	"fmt"

	"spritefs/internal/sim"
)

// Stats counts migration activity.
type Stats struct {
	Migrations int64
	Evictions  int64
	Reuses     int64 // selections that reused the previously chosen host
}

type hostState struct {
	id          int32
	ownerActive bool
	migrants    map[int32]bool
}

// Pool tracks which workstations are idle and places migrated processes.
type Pool struct {
	rng       *sim.Rand
	hosts     map[int32]*hostState
	order     []int32 // deterministic iteration order
	lastPick  int32
	havePick  bool
	reuseBias float64
	st        Stats
}

// NewPool returns a pool over the given host ids. reuseBias in [0,1] is
// the probability that selection reuses the previous target when it is
// still idle.
func NewPool(hosts []int32, reuseBias float64, rng *sim.Rand) *Pool {
	if rng == nil {
		panic("migrate: nil rng")
	}
	if reuseBias < 0 || reuseBias > 1 {
		panic(fmt.Sprintf("migrate: reuse bias %g out of range", reuseBias))
	}
	p := &Pool{
		rng:       rng,
		hosts:     make(map[int32]*hostState, len(hosts)),
		reuseBias: reuseBias,
	}
	for _, id := range hosts {
		if _, dup := p.hosts[id]; dup {
			panic(fmt.Sprintf("migrate: duplicate host %d", id))
		}
		p.hosts[id] = &hostState{id: id, migrants: make(map[int32]bool)}
		p.order = append(p.order, id)
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.st }

// IdleHosts returns the number of hosts currently eligible as targets.
func (p *Pool) IdleHosts() int {
	n := 0
	for _, h := range p.hosts {
		if !h.ownerActive {
			n++
		}
	}
	return n
}

// Migrants returns the pids currently migrated onto host.
func (p *Pool) Migrants(host int32) []int32 {
	h := p.hosts[host]
	if h == nil {
		return nil
	}
	out := make([]int32, 0, len(h.migrants))
	for _, id := range p.orderOfMigrants(h) {
		out = append(out, id)
	}
	return out
}

func (p *Pool) orderOfMigrants(h *hostState) []int32 {
	out := make([]int32, 0, len(h.migrants))
	for pid := range h.migrants {
		out = append(out, pid)
	}
	// Sort for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SetOwnerActive marks the owner as present (active=true) or away. When an
// owner returns to a host running migrated processes, those processes are
// evicted: their pids are returned so the caller can flush their memory
// and re-place or terminate them.
func (p *Pool) SetOwnerActive(host int32, active bool) []int32 {
	h := p.hosts[host]
	if h == nil {
		return nil
	}
	h.ownerActive = active
	if !active || len(h.migrants) == 0 {
		return nil
	}
	evicted := p.orderOfMigrants(h)
	for _, pid := range evicted {
		delete(h.migrants, pid)
	}
	p.st.Evictions += int64(len(evicted))
	return evicted
}

// Select picks a target host for a migrated process, never the requesting
// host. Selection reuses the previous target with probability reuseBias
// when it is still idle; otherwise it picks uniformly among idle hosts.
// ok is false when no idle host exists.
func (p *Pool) Select(requester int32) (host int32, ok bool) {
	if p.havePick && p.lastPick != requester && p.rng.Bool(p.reuseBias) {
		if h := p.hosts[p.lastPick]; h != nil && !h.ownerActive {
			p.st.Reuses++
			return p.lastPick, true
		}
	}
	var idle []int32
	for _, id := range p.order {
		if id == requester {
			continue
		}
		if h := p.hosts[id]; !h.ownerActive {
			idle = append(idle, id)
		}
	}
	if len(idle) == 0 {
		return 0, false
	}
	pick := idle[p.rng.Intn(len(idle))]
	p.lastPick, p.havePick = pick, true
	return pick, true
}

// AddMigrant registers a migrated process on host.
func (p *Pool) AddMigrant(host, pid int32) {
	h := p.hosts[host]
	if h == nil {
		panic(fmt.Sprintf("migrate: unknown host %d", host))
	}
	h.migrants[pid] = true
	p.st.Migrations++
}

// RemoveMigrant unregisters a migrated process (it exited normally).
func (p *Pool) RemoveMigrant(host, pid int32) {
	if h := p.hosts[host]; h != nil {
		delete(h.migrants, pid)
	}
}
