package workload

import (
	"testing"
	"time"
)

// shrink cuts a full-size parameter set down to the test rig's community.
func shrink(p Params) Params {
	p.NumClients = 6
	p.DailyUsers = 4
	p.OccasionalUsers = 2
	p.SessionMedian = 5 * time.Minute
	p.GapMedian = 10 * time.Minute
	p.ThinkMean = 3 * time.Second
	return p
}

func TestStreamingWorkload(t *testing.T) {
	p := shrink(StreamingParams(21))
	r := newRig(t, p)
	if len(r.eng.reg.Media) == 0 {
		t.Fatal("streaming params built no media library")
	}
	media := map[uint64]bool{}
	for _, f := range r.eng.reg.Media {
		media[f] = true
	}
	r.eng.Run(2 * time.Hour)
	r.s.RunUntil(3 * time.Hour)

	st := r.eng.Stats()
	if st.RunsByApp[AppStream] == 0 {
		t.Fatal("no streaming sessions ran")
	}
	mediaOpens, seeks := 0, 0
	for _, f := range r.fakes {
		for id, n := range f.opened {
			if media[id] {
				mediaOpens += n
			}
		}
		seeks += f.seeks
	}
	if mediaOpens == 0 {
		t.Error("streaming sessions never opened a media file")
	}
	if seeks == 0 {
		t.Error("no seek bursts observed")
	}
	opens, closes, execs, exits := r.totals()
	if opens != closes {
		t.Errorf("opens=%d closes=%d (must balance)", opens, closes)
	}
	if execs != exits {
		t.Errorf("execs=%d exits=%d (must balance)", execs, exits)
	}
	if r.s.Pending() != 0 {
		t.Errorf("%d events still pending", r.s.Pending())
	}
}

func TestBuildFarmMigrates(t *testing.T) {
	p := shrink(BuildFarmParams(22))
	p.MigrationUserFrac = 1.0
	r := newRig(t, p)
	r.eng.Run(2 * time.Hour)
	r.s.RunUntil(3 * time.Hour)

	st := r.eng.Stats()
	if st.RunsByApp[AppBuildFarm] == 0 {
		t.Fatal("no build-farm programs ran")
	}
	if st.Migrations == 0 {
		t.Error("build farm triggered no migrations")
	}
	deletes := 0
	for _, f := range r.fakes {
		deletes += f.deletes
	}
	if deletes == 0 {
		t.Error("farm never cleaned up artifacts")
	}
	opens, closes, execs, exits := r.totals()
	if opens != closes {
		t.Errorf("opens=%d closes=%d (must balance)", opens, closes)
	}
	if execs != exits {
		t.Errorf("execs=%d exits=%d (must balance)", execs, exits)
	}
	if r.s.Pending() != 0 {
		t.Errorf("%d events still pending", r.s.Pending())
	}
}

// TestStreamFarmDeterministic pins both new generator families to the
// same seeded-determinism bar as the 1991 mixes.
func TestStreamFarmDeterministic(t *testing.T) {
	for _, mk := range []func(int64) Params{StreamingParams, BuildFarmParams} {
		run := func() Stats {
			r := newRig(t, shrink(mk(33)))
			r.eng.Run(time.Hour)
			r.s.RunUntil(2 * time.Hour)
			return r.eng.Stats()
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("runs differ:\n%+v\n%+v", a, b)
		}
	}
}

// TestNewAppsAreRNGNeutral guards the golden gates: the new parameter
// fields default to zero, so a default-parameter community must behave
// identically to one built before the generators existed. (A weight of
// zero draws nothing extra from the RNG, and an empty media library
// skips its bootstrap loop.)
func TestNewAppsAreRNGNeutral(t *testing.T) {
	p := smallParams(7)
	for g := Group(0); g < NumGroups; g++ {
		if p.AppMix[g][AppStream] != 0 || p.AppMix[g][AppBuildFarm] != 0 {
			t.Fatal("new apps weighted in default mix")
		}
	}
	if p.MediaFiles != 0 || p.FarmPackages != 0 {
		t.Fatal("new populations enabled by default")
	}
	r := newRig(t, p)
	if len(r.eng.reg.Media) != 0 {
		t.Fatal("media library built at default params")
	}
	r.eng.Run(time.Hour)
	r.s.RunUntil(2 * time.Hour)
	if r.eng.Stats().RunsByApp[AppStream] != 0 || r.eng.Stats().RunsByApp[AppBuildFarm] != 0 {
		t.Error("new apps ran at default params")
	}
}
