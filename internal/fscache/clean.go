package fscache

import (
	"slices"
	"time"
)

// WritebackDelay is Sprite's delayed-write interval: dirty data is written
// to the server once it has been dirty for 30 seconds.
const WritebackDelay = 30 * time.Second

// CleanerPeriod is how often the cleaner daemon scans for expired dirty
// data (every 5 seconds in Sprite).
const CleanerPeriod = 5 * time.Second

// SetWritebackDelay overrides the delayed-write interval (for the
// writeback-delay ablation; the paper suggests longer delays as future
// work). Non-positive delays restore the default.
func (c *Cache) SetWritebackDelay(d time.Duration) {
	if d <= 0 {
		d = WritebackDelay
	}
	c.wbDelay = d
}

// WriteDelay returns the effective delayed-write interval.
func (c *Cache) WriteDelay() time.Duration {
	if c.wbDelay > 0 {
		return c.wbDelay
	}
	return WritebackDelay
}

// Clean implements the delayed-write daemon scan: every dirty block whose
// file has at least one block dirty for the writeback delay or longer is
// returned for writeback, matching Sprite's rule that "all dirty blocks
// for a file are written to the server if any block in the file has been
// dirty for 30 seconds". Returned blocks become clean.
//
// Only the dirty-file set is visited — sweep cost is proportional to the
// dirty population, not the cache population. Dirty file ids are swept in
// ascending order (never map iteration order): the age summaries
// accumulate floating-point samples whose sum depends on ordering, and
// metric dumps are required to be byte-identical across runs. Any file
// the old full scan would have flushed has an expired dirty block, so it
// is in the dirty set and the emitted writeback stream is unchanged.
//
// The returned slice aliases a per-cache scratch buffer: it is valid
// until the next Clean/Fsync/Recall/RecoverFlush on this cache.
func (c *Cache) Clean(now time.Duration) []Writeback {
	out := c.cleanScratch[:0]
	delay := c.WriteDelay()
	ids := c.dirtyIDScratch[:0]
	for id := range c.dirtyFiles {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	idxs := c.cleanIdxScr
	for _, file := range ids {
		fi := c.files[file]
		expired := false
		for _, v := range fi.dense {
			if v != 0 {
				if b := &c.blocks[v-1]; b.dirty && now-b.dirtyAt >= delay {
					expired = true
					break
				}
			}
		}
		if !expired {
			for _, s := range fi.sparse {
				if b := &c.blocks[s]; b.dirty && now-b.dirtyAt >= delay {
					expired = true
					break
				}
			}
		}
		if !expired {
			continue
		}
		idxs = fi.appendIndices(idxs[:0])
		for _, idx := range idxs {
			if b := &c.blocks[fi.get(idx)]; b.dirty {
				out = append(out, c.cleanBlock(fi, b, CleanDelay, now))
			}
		}
	}
	c.cleanIdxScr = idxs[:0]
	c.dirtyIDScratch = ids[:0]
	c.cleanScratch = out[:0]
	return out
}

func (c *Cache) cleanBlock(fi *fileIndex, b *block, reason CleanReason, now time.Duration) Writeback {
	wb := c.makeWriteback(b, reason, now)
	b.dirty = false
	c.ndirty--
	c.dirtyBytes -= b.dirtyHi
	b.dirtyHi = 0
	c.noteCleaned(fi, b.file)
	return wb
}

// Fsync returns all dirty blocks of file for synchronous writeback
// (the application invoked the fsync kernel call).
func (c *Cache) Fsync(file uint64, now time.Duration) []Writeback {
	return c.flushFile(file, CleanFsync, now)
}

// Recall returns all dirty blocks of file for immediate writeback because
// the server needs the most recent data to supply to another client.
func (c *Cache) Recall(file uint64, now time.Duration) []Writeback {
	return c.flushFile(file, CleanRecall, now)
}

// flushFile cleans every dirty block of file. Like Clean, the returned
// slice aliases the per-cache scratch buffer.
func (c *Cache) flushFile(file uint64, reason CleanReason, now time.Duration) []Writeback {
	fi := c.files[file]
	if fi == nil || fi.dirty == 0 {
		return nil
	}
	out := c.cleanScratch[:0]
	idxs := fi.appendIndices(c.cleanIdxScr[:0])
	for _, idx := range idxs {
		if b := &c.blocks[fi.get(idx)]; b.dirty {
			out = append(out, c.cleanBlock(fi, b, reason, now))
		}
	}
	c.cleanIdxScr = idxs[:0]
	c.cleanScratch = out[:0]
	return out
}

// Invalidate drops every resident block of file without writeback; the
// client calls it when an open returns a newer version timestamp than the
// cached copy ("the client uses this to flush any stale data from its
// cache"). It returns the number of blocks dropped; in a correctly
// operating system stale dirty data cannot exist, so dirty bytes are
// simply discarded.
func (c *Cache) Invalidate(file uint64) int {
	fi := c.files[file]
	if fi == nil {
		return 0
	}
	idxs := fi.appendIndices(c.cleanIdxScr[:0])
	for _, idx := range idxs {
		c.remove(fi.get(idx))
	}
	n := len(idxs)
	c.cleanIdxScr = idxs[:0]
	return n
}

// FileDirty reports whether file has any dirty blocks resident.
func (c *Cache) FileDirty(file uint64) bool {
	fi := c.files[file]
	return fi != nil && fi.dirty > 0
}

// Delete drops every resident block of file; dirty bytes vanish without
// ever reaching the server. This is the delayed-write payoff the paper
// quantifies: "about one-tenth of all new data is overwritten or deleted
// before it can be passed on to the server". The saved byte count is
// returned and accumulated in the stats.
func (c *Cache) Delete(file uint64) int64 {
	fi := c.files[file]
	if fi == nil {
		return 0
	}
	var saved int64
	idxs := fi.appendIndices(c.cleanIdxScr[:0])
	for _, idx := range idxs {
		s := fi.get(idx)
		if b := &c.blocks[s]; b.dirty {
			saved += b.dirtyHi
		}
		c.remove(s)
	}
	c.cleanIdxScr = idxs[:0]
	c.st.BytesSavedByDelete += saved
	return saved
}

// Truncate drops blocks at or beyond newSize and trims the boundary block.
// Dirty bytes above the cut are counted as saved, like Delete.
func (c *Cache) Truncate(file uint64, newSize int64) int64 {
	fi := c.files[file]
	if fi == nil {
		return 0
	}
	var saved int64
	cutBlock := newSize / BlockSize
	cutWithin := newSize % BlockSize
	idxs := fi.appendIndices(c.cleanIdxScr[:0])
	for _, idx := range idxs {
		s := fi.get(idx)
		b := &c.blocks[s]
		switch {
		case idx > cutBlock || (idx == cutBlock && cutWithin == 0):
			if b.dirty {
				saved += b.dirtyHi
			}
			c.remove(s)
		case idx == cutBlock:
			if b.validHi > cutWithin {
				b.validHi = cutWithin
			}
			if b.dirty && b.dirtyHi > cutWithin {
				saved += b.dirtyHi - cutWithin
				c.dirtyBytes -= b.dirtyHi - cutWithin
				b.dirtyHi = cutWithin
				if b.dirtyHi == 0 {
					b.dirty = false
					c.ndirty--
					c.noteCleaned(fi, file)
				}
			}
		}
	}
	c.cleanIdxScr = idxs[:0]
	c.st.BytesSavedByDelete += saved
	return saved
}

// TakeForVM hands n blocks to the virtual memory system: the LRU victims
// are evicted with their replacement attributed to VM (Table 8's
// "virtual memory page" row). Dirty victims are returned for writeback.
// It returns the writebacks and the number of blocks actually released.
func (c *Cache) TakeForVM(n int, now time.Duration) ([]Writeback, int) {
	var out []Writeback
	released := 0
	for i := 0; i < n && c.nblocks > 0; i++ {
		wb, dirty := c.evictOne(now, true)
		if dirty {
			out = append(out, wb)
		}
		released++
	}
	// Capacity shrinks with the released pages so the cache does not
	// immediately regrow; GrowBy restores it when VM returns pages.
	c.capacity -= released
	if c.capacity < 1 {
		c.capacity = 1
	}
	return out, released
}

// GrowBy raises the cache capacity by n blocks (pages granted by the VM
// system).
func (c *Cache) GrowBy(n int) {
	if n > 0 {
		c.capacity += n
	}
}

// SetCapacity sets an absolute capacity, evicting as needed. Evictions are
// attributed to VM when vmTake is true. It returns any dirty writebacks.
func (c *Cache) SetCapacity(blocks int, vmTake bool, now time.Duration) []Writeback {
	if blocks < 1 {
		blocks = 1
	}
	c.capacity = blocks
	var out []Writeback
	for c.nblocks > c.capacity {
		wb, dirty := c.evictOne(now, vmTake)
		if dirty {
			out = append(out, wb)
		}
	}
	return out
}

// OldestRef returns the last-reference time of the LRU block and whether
// the cache is non-empty. The memory arbiter uses it to decide whether the
// file cache or the VM system holds the colder page.
func (c *Cache) OldestRef() (time.Duration, bool) {
	if c.lruBack < 0 {
		return 0, false
	}
	return c.blocks[c.lruBack].lastRef, true
}
