package workload

import (
	"testing"
	"time"

	"spritefs/internal/server"
	"spritefs/internal/sim"
)

// fakeHost implements Host against a real server (for file state) but
// without caches, VM or network — it verifies the engine's op sequencing
// in isolation.
type fakeHost struct {
	id      int32
	srv     *server.Server
	s       *sim.Sim
	opens   int
	closes  int
	reads   int
	writes  int
	seeks   int
	deletes int
	execs   int
	exits   int
	pos     map[uint64]int64
	file    map[uint64]uint64
	opened  map[uint64]int
	nextH   uint64
}

func newFakeHost(id int32, srv *server.Server, s *sim.Sim) *fakeHost {
	return &fakeHost{id: id, srv: srv, s: s,
		pos: map[uint64]int64{}, file: map[uint64]uint64{}, opened: map[uint64]int{}}
}

func (f *fakeHost) ID() int32 { return f.id }

func (f *fakeHost) Create(user, proc int32, dir, migrated bool) uint64 {
	return f.srv.Create(dir, f.s.Now()).ID
}

func (f *fakeHost) Open(user, proc int32, file uint64, read, write, migrated bool) (uint64, time.Duration, error) {
	if _, err := f.srv.Open(file, f.id, write, f.s.Now()); err != nil {
		return 0, 0, err
	}
	f.opens++
	f.opened[file]++
	f.nextH++
	h := f.nextH
	f.pos[h] = 0
	f.file[h] = file
	return h, time.Millisecond, nil
}

func (f *fakeHost) Read(h uint64, n int64) (int64, time.Duration) {
	file := f.file[h]
	if file == 0 {
		return 0, 0
	}
	size := f.FileSize(file)
	avail := size - f.pos[h]
	if n > avail {
		n = avail
	}
	if n <= 0 {
		return 0, 0
	}
	f.reads++
	f.pos[h] += n
	return n, time.Millisecond
}

func (f *fakeHost) Write(h uint64, n int64) time.Duration {
	file := f.file[h]
	if file == 0 {
		return 0
	}
	f.writes++
	f.srv.Grow(file, f.pos[h]+n, f.s.Now())
	f.pos[h] += n
	return time.Millisecond
}

func (f *fakeHost) Seek(h uint64, pos int64) time.Duration {
	f.seeks++
	f.pos[h] = pos
	return 0
}

func (f *fakeHost) Fsync(h uint64) time.Duration { return 0 }

func (f *fakeHost) Close(h uint64) (time.Duration, error) {
	if f.file[h] == 0 {
		return 0, nil
	}
	f.closes++
	delete(f.file, h)
	delete(f.pos, h)
	return 0, nil
}

func (f *fakeHost) Delete(user, proc int32, file uint64, migrated bool) {
	f.deletes++
	f.srv.Delete(file, f.s.Now())
}

func (f *fakeHost) Truncate(user, proc int32, file uint64, migrated bool) {
	f.srv.Truncate(file, f.s.Now())
}

func (f *fakeHost) ExecProcess(pid int32, execFile uint64, c, d, st int, m bool) { f.execs++ }
func (f *fakeHost) TouchProcess(pid int32, grow int)                             {}
func (f *fakeHost) ExitProcess(pid int32)                                        { f.exits++ }
func (f *fakeHost) EvictMigrated(pid int32)                                      {}

func (f *fakeHost) FileSize(file uint64) int64 {
	if fl := f.srv.Lookup(file); fl != nil {
		return fl.Size
	}
	return 0
}

func smallParams(seed int64) Params {
	p := Default(seed)
	p.NumClients = 6
	p.DailyUsers = 4
	p.OccasionalUsers = 2
	p.SessionMedian = 5 * time.Minute
	p.GapMedian = 10 * time.Minute
	p.ThinkMean = 3 * time.Second
	return p
}

type rig struct {
	s     *sim.Sim
	srv   *server.Server
	hosts map[int32]Host
	fakes []*fakeHost
	eng   *Engine
}

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	r := &rig{s: sim.New(p.Seed), srv: server.New(0), hosts: map[int32]Host{}}
	for i := 0; i < p.NumClients; i++ {
		fh := newFakeHost(int32(i), r.srv, r.s)
		r.fakes = append(r.fakes, fh)
		r.hosts[int32(i)] = fh
	}
	reg := Bootstrap(p, []*server.Server{r.srv}, sim.NewRand(p.Seed+1))
	r.eng = NewEngine(r.s, p, reg, r.hosts)
	return r
}

func (r *rig) totals() (opens, closes, execs, exits int) {
	for _, f := range r.fakes {
		opens += f.opens
		closes += f.closes
		execs += f.execs
		exits += f.exits
	}
	return
}

func TestEngineRunsCommunity(t *testing.T) {
	r := newRig(t, smallParams(7))
	r.eng.Run(2 * time.Hour)
	r.s.RunUntil(3 * time.Hour)

	st := r.eng.Stats()
	if st.ProgramsRun < 20 {
		t.Fatalf("only %d programs ran", st.ProgramsRun)
	}
	if st.SessionsRun < 4 {
		t.Errorf("sessions = %d", st.SessionsRun)
	}
	opens, closes, execs, exits := r.totals()
	if opens == 0 || opens != closes {
		t.Errorf("opens=%d closes=%d (must balance)", opens, closes)
	}
	if execs != exits {
		t.Errorf("execs=%d exits=%d (must balance)", execs, exits)
	}
	if r.s.Pending() != 0 {
		t.Errorf("%d events still pending after the horizon", r.s.Pending())
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() Stats {
		r := newRig(t, smallParams(42))
		r.eng.Run(time.Hour)
		r.s.RunUntil(2 * time.Hour)
		return r.eng.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestEngineMigrationHappens(t *testing.T) {
	p := smallParams(11)
	p.MigrationUserFrac = 1.0 // every daily user pmakes
	for g := Group(0); g < NumGroups; g++ {
		p.AppMix[g][AppPmake] = 100
	}
	r := newRig(t, p)
	r.eng.Run(2 * time.Hour)
	r.s.RunUntil(3 * time.Hour)
	if r.eng.Stats().Migrations == 0 {
		t.Error("no migrations with pmake-only mix")
	}
	// Migrated compile programs ran on non-home hosts.
	remoteExecs := 0
	for i := 4; i < 6; i++ { // hosts of occasional users: targets while idle
		remoteExecs += r.fakes[i].execs
	}
	if remoteExecs == 0 {
		t.Error("no executions on idle hosts")
	}
}

func TestEngineOnMigrateCallback(t *testing.T) {
	p := smallParams(13)
	p.MigrationUserFrac = 1.0
	for g := Group(0); g < NumGroups; g++ {
		p.AppMix[g][AppPmake] = 100
	}
	r := newRig(t, p)
	var calls int
	r.eng.OnMigrate = func(user, pid, from, to int32) {
		calls++
		if from == to {
			t.Errorf("migration from %d to itself", from)
		}
	}
	r.eng.Run(time.Hour)
	r.s.RunUntil(2 * time.Hour)
	if calls == 0 {
		t.Error("OnMigrate never called")
	}
	if int64(calls) != r.eng.Stats().Migrations {
		t.Errorf("callback calls %d != migrations %d", calls, r.eng.Stats().Migrations)
	}
}

func TestEngineStopsAtHorizon(t *testing.T) {
	r := newRig(t, smallParams(5))
	r.eng.Run(30 * time.Minute)
	r.s.RunUntil(24 * time.Hour)
	if r.s.Now() != 24*time.Hour {
		t.Errorf("clock = %v", r.s.Now())
	}
	// All activity drains shortly after the horizon; no unbounded tail.
	if r.s.Pending() != 0 {
		t.Errorf("pending events: %d", r.s.Pending())
	}
}

func TestTraceParamsVariants(t *testing.T) {
	for n := 1; n <= 8; n++ {
		p := TraceParams(n)
		if p.Seed == 0 {
			t.Errorf("trace %d: zero seed", n)
		}
		switch n {
		case 3, 4:
			if p.BigSimUsers != 2 || p.SimInputMB != 20 {
				t.Errorf("trace %d: big-sim users not configured", n)
			}
		case 7, 8:
			if p.AppMix[GroupOS][AppSharedLog] <= Default(1).AppMix[GroupOS][AppSharedLog] {
				t.Errorf("trace %d: sharing not elevated", n)
			}
		default:
			if p.BigSimUsers != 0 {
				t.Errorf("trace %d: unexpected big-sim users", n)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("TraceParams(0) did not panic")
		}
	}()
	TraceParams(0)
}

func TestBootstrapPopulation(t *testing.T) {
	p := smallParams(3)
	p.BigSimUsers = 1
	srv := server.New(0)
	reg := Bootstrap(p, []*server.Server{srv}, sim.NewRand(9))
	if len(reg.Binaries) == 0 || len(reg.KernelImages) == 0 {
		t.Fatal("no binaries")
	}
	users := p.DailyUsers + p.OccasionalUsers
	for u := int32(0); u < int32(users); u++ {
		if len(reg.UserSmall[u]) == 0 {
			t.Errorf("user %d has no files", u)
		}
		if reg.Mailboxes[u] == 0 || reg.UserDirs[u] == 0 {
			t.Errorf("user %d missing mailbox/dir", u)
		}
	}
	for g := Group(0); g < NumGroups; g++ {
		if len(reg.GroupShared[g]) == 0 || reg.GroupDirs[g] == 0 {
			t.Errorf("group %v missing shared files", g)
		}
	}
	if len(reg.BigInputs) != 1 || len(reg.BigInputs[0]) == 0 {
		t.Error("big-sim inputs missing")
	}
	// Kernel images are 2-10 MB.
	for _, id := range reg.KernelImages {
		size := srv.Lookup(id).Size
		if size < 2<<20 || size > 10<<20 {
			t.Errorf("kernel image size %d out of range", size)
		}
	}
	// Mailboxes and dirs must exist on the server.
	if srv.Lookup(reg.UserDirs[0]) == nil || !srv.Lookup(reg.UserDirs[0]).Directory {
		t.Error("user dir not a directory")
	}
}

func TestGroupAndAppNames(t *testing.T) {
	if GroupOS.String() != "os" || Group(99).String() != "group?" {
		t.Error("group names")
	}
	if AppPmake.String() != "pmake" || AppKind(99).String() != "app?" {
		t.Error("app names")
	}
}

func TestBSD1985Params(t *testing.T) {
	p := BSD1985(1)
	d := Default(1)
	if p.NumClients >= d.NumClients {
		t.Error("1985 cluster not smaller")
	}
	if p.EditRate >= d.EditRate || p.SimRate >= d.SimRate {
		t.Error("1985 processing not slower")
	}
	if p.BinMax >= d.BinMax || p.BigSimUsers != 0 {
		t.Error("1985 files not smaller")
	}
	if p.MigrationUserFrac != 0 || p.AppMix[GroupOS][AppPmake] != 0 {
		t.Error("1985 workload migrates")
	}
	// The 1985 community still runs.
	p.DailyUsers, p.OccasionalUsers = 4, 2
	srv := server.New(0)
	s := sim.New(1)
	hosts := map[int32]Host{}
	for i := 0; i < p.NumClients; i++ {
		hosts[int32(i)] = newFakeHost(int32(i), srv, s)
	}
	reg := Bootstrap(p, []*server.Server{srv}, sim.NewRand(2))
	e := NewEngine(s, p, reg, hosts)
	e.Run(time.Hour)
	s.RunUntil(2 * time.Hour)
	if e.Stats().ProgramsRun == 0 {
		t.Error("1985 community ran nothing")
	}
	if e.Stats().Migrations != 0 {
		t.Error("1985 community migrated processes")
	}
}
