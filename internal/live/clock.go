package live

import (
	"errors"
	"sync"
	"time"

	"spritefs/internal/sim"
)

// ErrStopped is returned by WallClock.Call (and by RPC dispatch built on
// it) once the clock's loop has shut down.
var ErrStopped = errors.New("live: wall clock stopped")

// WallClock implements the sim.Clock seam on real time. It wraps a
// *sim.Sim and paces it against the monotonic clock from a single
// dispatcher goroutine: pending events fire when their virtual time
// arrives on the wall, and scheduling calls from other goroutines are
// marshalled onto that loop. Virtual time and wall time share an origin
// (the moment New was called), so sim.Time doubles as "duration since the
// service started".
//
// Concurrency contract: WallClock's exported methods are safe from any
// goroutine EXCEPT code already executing on the dispatcher loop — such
// code owns the inner *sim.Sim and must use it directly (Call and Every
// block on the loop and would deadlock). Tickers returned by Every are
// armed in the inner scheduler; stop them from the loop (wrap the Stop in
// Call) rather than directly.
type WallClock struct {
	inner *sim.Sim
	start time.Time

	mu      sync.Mutex
	subs    []submission
	stopped bool

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// submission is one externally requested scheduling action, applied by the
// dispatcher loop in arrival order.
type submission struct {
	abs    bool
	at     sim.Time // absolute target when abs
	delay  sim.Time // relative to loop-now otherwise
	period sim.Time // > 0: recurring (Every)
	fn     func()
	ran    chan struct{}    // Call: closed once fn has executed
	tk     chan *sim.Ticker // Every: receives the armed ticker
}

// New wraps inner in a wall-clock pacer. The wall origin is anchored now;
// call Start to launch the dispatcher loop. The caller must hand over
// ownership: after Start, only the loop may touch inner.
func New(inner *sim.Sim) *WallClock {
	return &WallClock{
		inner: inner,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the dispatcher loop. The wall origin is re-anchored to
// this moment, so time spent constructing the cluster (file-population
// bootstrap) does not count as elapsed service time; anything the caller
// scheduled directly on the inner simulator before Start (daemon setup at
// virtual time zero) fires from here on.
func (w *WallClock) Start() {
	w.start = time.Now()
	go w.loop()
}

// Stop shuts the loop down and waits for it to exit. Pending Call and
// Every submissions are released with ErrStopped / a nil ticker; pending
// simulator events are dropped unfired. Safe to call once.
func (w *WallClock) Stop() {
	close(w.quit)
	<-w.done
}

// Now returns the wall time elapsed since the clock was created, as the
// sim.Time every component on the loop also sees (the loop advances the
// inner simulator to this value before firing events).
func (w *WallClock) Now() sim.Time { return sim.Time(time.Since(w.start)) }

// At schedules fn on the dispatcher loop at absolute time t; times already
// past are clamped to "as soon as the loop gets to it".
func (w *WallClock) At(t sim.Time, fn func()) {
	w.submit(submission{abs: true, at: t, fn: fn})
}

// After schedules fn on the dispatcher loop d from now; negative d is
// clamped to zero.
func (w *WallClock) After(d sim.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	w.submit(submission{delay: d, fn: fn})
}

// Every schedules fn at start and then every period thereafter, on wall
// time. It blocks until the loop has armed the timer and returns the
// ticker (nil if the clock is already stopped). period must be positive.
func (w *WallClock) Every(start, period sim.Time, fn func()) *sim.Ticker {
	if period <= 0 {
		panic("live: non-positive ticker period")
	}
	ch := make(chan *sim.Ticker, 1)
	if !w.submit(submission{abs: true, at: start, period: period, fn: fn, tk: ch}) {
		return nil
	}
	return <-ch
}

// WallClock implements the scheduling seam.
var _ sim.Clock = (*WallClock)(nil)

// Call runs fn on the dispatcher loop and waits for it to finish — the
// primitive behind RPC dispatch and live /metrics snapshots. fn may use
// the inner simulator freely (it is running on the loop).
func (w *WallClock) Call(fn func()) error {
	executed := false
	ch := make(chan struct{})
	if !w.submit(submission{fn: func() { fn(); executed = true }, ran: ch}) {
		return ErrStopped
	}
	<-ch
	if !executed {
		return ErrStopped
	}
	return nil
}

// Go runs fn on the dispatcher loop without waiting. It reports whether
// the closure was accepted (false once the clock has stopped).
func (w *WallClock) Go(fn func()) bool {
	return w.submit(submission{fn: fn})
}

// Sim returns the inner simulator. Only code already executing on the
// dispatcher loop (inside a Call/Go closure or a scheduled event) may use
// it; from there it is the natural way to schedule follow-up events
// without re-marshalling.
func (w *WallClock) Sim() *sim.Sim { return w.inner }

// submit queues sb for the loop and wakes it. Returns false if the loop
// has already shut down (sb's channels, if any, are released by shutdown
// or never entered the queue).
func (w *WallClock) submit(sb submission) bool {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return false
	}
	w.subs = append(w.subs, sb)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return true
}

// idleWait bounds how long the loop sleeps when the simulator has no
// pending events at all (daemons normally guarantee one); it only matters
// for a bare WallClock with nothing scheduled yet.
const idleWait = 250 * time.Millisecond

// loop is the dispatcher: apply submissions, fire due events, sleep until
// the next event's wall time or the next submission.
func (w *WallClock) loop() {
	defer w.shutdown()
	for {
		w.mu.Lock()
		subs := w.subs
		w.subs = nil
		w.mu.Unlock()
		now := w.Now()
		for _, sb := range subs {
			w.apply(sb, now)
		}
		w.inner.RunUntil(now)

		select {
		case <-w.quit:
			return
		default:
		}

		// Sleep until the earliest pending event is due on the wall, or a
		// submission arrives. A nil timer channel blocks the select on
		// wake/quit alone.
		var (
			timerC <-chan time.Time
			timer  *time.Timer
		)
		wait := idleWait
		if at, ok := w.inner.NextAt(); ok {
			wait = time.Duration(at - w.Now())
			if wait <= 0 {
				continue // already due; run another pass immediately
			}
		}
		timer = time.NewTimer(wait)
		timerC = timer.C
		select {
		case <-w.wake:
			timer.Stop()
		case <-timerC:
		case <-w.quit:
			timer.Stop()
			return
		}
	}
}

// apply installs one submission into the inner scheduler. Target times in
// the simulator's past are clamped to its now (external callers computed
// them against a wall clock that has since moved).
func (w *WallClock) apply(sb submission, now sim.Time) {
	at := sb.at
	if !sb.abs {
		at = now + sb.delay
	}
	if at < w.inner.Now() {
		at = w.inner.Now()
	}
	switch {
	case sb.period > 0:
		sb.tk <- w.inner.Every(at, sb.period, sb.fn)
	case sb.ran != nil:
		fn, ch := sb.fn, sb.ran
		w.inner.At(at, func() { fn(); close(ch) })
	default:
		w.inner.At(at, sb.fn)
	}
}

// shutdown marks the clock stopped and releases every submission that was
// still queued: Call waiters observe executed == false (ErrStopped), Every
// waiters receive a nil ticker.
func (w *WallClock) shutdown() {
	w.mu.Lock()
	w.stopped = true
	subs := w.subs
	w.subs = nil
	w.mu.Unlock()
	for _, sb := range subs {
		if sb.ran != nil {
			close(sb.ran)
		}
		if sb.tk != nil {
			sb.tk <- nil
		}
	}
	close(w.done)
}
