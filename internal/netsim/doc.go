// Package netsim models the cluster interconnect of the measured system: a
// shared 10 Mbit/s Ethernet carrying RPCs between diskless clients and the
// file servers. The model is analytic — an RPC costs a fixed base latency
// plus payload time at the wire bandwidth — because the paper reports the
// network was far from saturation (40 workstations generate ~4% of Ethernet
// bandwidth in paging traffic). What matters for the tables is the byte
// accounting: every byte crossing the wire is attributed to a traffic class
// and a client, which is exactly the instrumentation behind Tables 5 and 7.
package netsim
