package fscache

import (
	"testing"
	"time"
)

func BenchmarkReadHit(b *testing.B) {
	c := New(4096)
	c.Read(1, 0, 1<<20, 1<<20, Attr{}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(1, 0, 1<<20, 1<<20, Attr{}, time.Duration(i))
	}
}

func BenchmarkReadMissCycle(b *testing.B) {
	// A working set twice the cache size: every pass misses.
	c := New(256)
	const fileSize = 512 * BlockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%512) * BlockSize
		c.Read(1, off, BlockSize, fileSize, Attr{}, time.Duration(i))
	}
}

func BenchmarkWriteAndClean(b *testing.B) {
	c := New(4096)
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Second
		c.Write(uint64(i%16+1), 0, BlockSize, 0, Attr{}, now)
		if i%64 == 0 {
			c.Clean(now + WritebackDelay)
		}
	}
}

func BenchmarkEvictionPressure(b *testing.B) {
	c := New(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i), 0, BlockSize, BlockSize, Attr{}, time.Duration(i))
	}
}
