package consistency

import "time"

// StaleResult reports the Table 11 metrics for one polling interval.
type StaleResult struct {
	Interval time.Duration
	// Errors is the number of potential stale-data reads.
	Errors int64
	// ErrorsPerHour normalizes by trace duration.
	ErrorsPerHour float64
	// UsersAffected / TotalUsers: distinct users who suffered at least one
	// error over the trace.
	UsersAffected int
	TotalUsers    int
	// OpensWithError / TotalOpens: opens during which at least one stale
	// read occurred.
	OpensWithError int64
	TotalOpens     int64
	// MigratedOpensWithError / MigratedOpens: the same restricted to
	// migrated processes (the paper's hypothesis check).
	MigratedOpensWithError int64
	MigratedOpens          int64
}

// PctOpensWithError returns OpensWithError as a percentage of TotalOpens.
func (r *StaleResult) PctOpensWithError() float64 {
	if r.TotalOpens == 0 {
		return 0
	}
	return 100 * float64(r.OpensWithError) / float64(r.TotalOpens)
}

// PctMigratedOpensWithError returns the migrated-open error percentage.
func (r *StaleResult) PctMigratedOpensWithError() float64 {
	if r.MigratedOpens == 0 {
		return 0
	}
	return 100 * float64(r.MigratedOpensWithError) / float64(r.MigratedOpens)
}

// PctUsersAffected returns UsersAffected as a percentage of TotalUsers.
func (r *StaleResult) PctUsersAffected() float64 {
	if r.TotalUsers == 0 {
		return 0
	}
	return 100 * float64(r.UsersAffected) / float64(r.TotalUsers)
}

// SimulateStale replays the shared-file events under the paper's weaker,
// NFS-like consistency model: a client considers cached data valid for a
// fixed interval; on the first access after expiry it revalidates with the
// server; writes go through to the server almost immediately; but within
// the validity window a client can read data another workstation has since
// overwritten — a potential stale-data error.
func SimulateStale(st SharedTrace, interval time.Duration) StaleResult {
	res := StaleResult{
		Interval:      interval,
		TotalUsers:    len(st.Users),
		TotalOpens:    st.TotalOpens,
		MigratedOpens: st.MigratedOpens,
	}
	type cacheKey struct {
		client int32
		file   uint64
	}
	type cacheEntry struct {
		version     uint64 // file version the client last validated against
		validatedAt time.Duration
	}
	versions := make(map[uint64]uint64) // file -> current version
	cache := make(map[cacheKey]cacheEntry)
	affected := make(map[int32]bool)
	erroredOpens := make(map[uint64]bool) // handles that saw >= 1 error
	type openInfo struct {
		handle   uint64
		migrated bool
	}
	curOpen := make(map[cacheKey]openInfo)

	for _, ev := range st.Events {
		key := cacheKey{ev.Client, ev.File}
		switch ev.Kind {
		case EvOpen:
			curOpen[key] = openInfo{handle: ev.Handle, migrated: ev.Migrated}
		case EvClose:
			delete(curOpen, key)
		case EvWrite:
			// Write-through: the server's version advances and the writer
			// revalidates its own copy.
			versions[ev.File]++
			cache[key] = cacheEntry{version: versions[ev.File], validatedAt: ev.Time}
		case EvRead:
			cur := versions[ev.File]
			e, ok := cache[key]
			if ok && ev.Time-e.validatedAt < interval {
				// Inside the validity window: the client trusts its copy.
				if e.version != cur {
					res.Errors++
					affected[ev.User] = true
					if oi, open := curOpen[key]; open && !erroredOpens[oi.handle] {
						erroredOpens[oi.handle] = true
						res.OpensWithError++
						if oi.migrated {
							res.MigratedOpensWithError++
						}
					}
				}
			} else {
				// Expired (or cold): revalidate with the server.
				cache[key] = cacheEntry{version: cur, validatedAt: ev.Time}
			}
		}
	}
	res.UsersAffected = len(affected)
	if st.Duration > 0 {
		res.ErrorsPerHour = float64(res.Errors) / st.Duration.Hours()
	}
	return res
}
